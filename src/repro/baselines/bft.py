"""The BFT baseline: flat PBFT across regions (paper Fig. 1a).

One replica per region; clients submit requests to all replicas and accept
``f + 1`` matching replies.  Weakly consistent reads are answered directly
by each replica, but the client still needs ``f + 1`` matching answers — at
least one of which crosses the WAN, which is exactly why the paper's
Fig. 8b/10b show BFT weak reads paying wide-area latency.

Passing ``weights`` turns the system into **BFT-WV** (weighted voting a la
WHEAT): extra replicas join the group and the consensus quorum is formed by
vote weight instead of count.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.app.statemachine import StateMachine, is_read_only
from repro.checkpoints import CheckpointComponent
from repro.consensus.pbft import PbftConfig, PbftReplica, is_noop
from repro.core.client import SpiderClient
from repro.core.messages import (
    ClientRequest,
    Reply,
    RequestWrapper,
    WeakRead,
    WeakReadReply,
)
from repro.crypto.primitives import attach_auth, make_mac, verify, verify_mac_vector
from repro.errors import ConfigurationError
from repro.net import Network, Site, Topology
from repro.sim import Process, Simulator
from repro.sim.routing import RoutedNode


class BftReplica(RoutedNode):
    """A geo-distributed PBFT replica hosting the application directly."""

    def __init__(self, sim, name, site, app: StateMachine, f: int = 1, checkpoint_interval: int = 16):
        super().__init__(sim, name, site)
        self.app = app
        self.f = f
        self.checkpoint_interval = checkpoint_interval
        self.sn = 0
        self.t: Dict[str, int] = {}
        self.u: Dict[str, Tuple[int, Any]] = {}
        self.ag: Optional[PbftReplica] = None
        self.cp: Optional[CheckpointComponent] = None
        self.executed_count = 0
        self.set_default_handler(self._on_client_message)

    def setup(self, peers, pbft_config: PbftConfig) -> None:
        self.ag = PbftReplica(self, "pbft-bft", peers, pbft_config)
        self.cp = CheckpointComponent(
            self, "cp-bft", peers, self.f, self._on_stable_checkpoint
        )
        Process(self.sim, self._delivery_loop(), node=self, name=f"{self.name}.deliver")

    # ------------------------------------------------------------------
    # Client handling
    # ------------------------------------------------------------------
    def _on_client_message(self, src, message: Any) -> None:
        if isinstance(message, ClientRequest):
            self._on_request(src, message)
        elif isinstance(message, WeakRead):
            self._on_weak_read(src, message)

    def _on_request(self, src, message: ClientRequest) -> None:
        body = message.body
        if body.client != src.name:
            return
        if not verify_mac_vector(message.auth, body, body.client, self.name):
            return
        cached = self.u.get(body.client)
        if body.counter <= self.t.get(body.client, 0):
            if cached is not None and cached[0] == body.counter:
                self._send_reply(body.client, cached[0], cached[1])
            return
        if not verify(message.signature, body, signer=body.client):
            return
        self.t[body.client] = body.counter
        self.ag.order(RequestWrapper(body=body, signature=message.signature, group="bft"))

    def _on_weak_read(self, src, message: WeakRead) -> None:
        if message.client != src.name:
            return
        if not verify_mac_vector(message.auth, message, message.client, self.name):
            return
        if not is_read_only(message.operation):
            return
        result = self.app.execute(message.operation)
        reply = WeakReadReply(result=result, nonce=message.nonce, sender=self.name)
        reply = attach_auth(reply, mac=make_mac(self.name, message.client, reply))
        self.send(src, reply)

    # ------------------------------------------------------------------
    # Ordered execution
    # ------------------------------------------------------------------
    def _delivery_loop(self):
        while True:
            seq, payload = yield self.ag.next_delivery()
            if seq <= self.sn:
                continue
            self.sn = seq
            if isinstance(payload, RequestWrapper) and not is_noop(payload):
                self._execute(payload)
            if seq % self.checkpoint_interval == 0:
                self.cp.gen_cp(seq, self._snapshot())

    def _execute(self, wrapper: RequestWrapper) -> None:
        body = wrapper.body
        cached = self.u.get(body.client)
        if cached is not None and cached[0] >= body.counter:
            return
        result = self.app.execute(body.operation)
        self.executed_count += 1
        self.u[body.client] = (body.counter, result)
        self.t[body.client] = max(self.t.get(body.client, 0), body.counter)
        self._send_reply(body.client, body.counter, result)

    def _send_reply(self, client: str, counter: int, result: Any) -> None:
        target = self.network.nodes.get(client) if self.network else None
        if target is None:
            return
        reply = Reply(result=result, counter=counter, sender=self.name, group="bft")
        reply = attach_auth(reply, mac=make_mac(self.name, client, reply))
        self.send(target, reply)

    # ------------------------------------------------------------------
    # Checkpointing / log truncation
    # ------------------------------------------------------------------
    def _snapshot(self) -> Tuple:
        return (tuple(sorted(self.u.items())), self.app.snapshot())

    def _on_stable_checkpoint(self, seq: int, state: Tuple) -> None:
        self.ag.gc(seq + 1)
        if seq > self.sn:
            reply_cache, app_state = state
            self.sn = seq
            self.u = dict(reply_cache)
            self.app.restore(app_state)


class BftSystem:
    """Builder for the BFT / BFT-WV baselines.

    Parameters
    ----------
    regions:
        One replica is placed in each listed region, in order; the first
        region hosts the initial leader.  Rotate the list to move the
        leader (the paper's "Leader in V/O/I/T" configurations).
    weights:
        Optional region -> vote weight map; enables weighted voting.
    """

    def __init__(
        self,
        sim: Simulator,
        regions: List[str],
        app_factory,
        f: int = 1,
        network: Optional[Network] = None,
        weights: Optional[Dict[str, float]] = None,
        view_timeout_ms: float = 4000.0,
        checkpoint_interval: int = 16,
    ):
        if len(regions) < 3 * f + 1:
            raise ConfigurationError(f"BFT with f={f} needs >= {3 * f + 1} regions")
        self.sim = sim
        self.network = network or Network(sim, Topology())
        self.replicas: List[BftReplica] = []
        self.f = f
        for index, region in enumerate(regions):
            replica = BftReplica(
                sim,
                f"bft-{region}",
                Site(region, 1),
                app_factory(),
                f=f,
                checkpoint_interval=checkpoint_interval,
            )
            self.network.register(replica)
            self.replicas.append(replica)
        name_weights = (
            {f"bft-{region}": weight for region, weight in weights.items()}
            if weights
            else None
        )
        config = PbftConfig(f=f, view_timeout_ms=view_timeout_ms, weights=name_weights)
        for replica in self.replicas:
            replica.setup(self.replicas, config)
        self.clients: Dict[str, SpiderClient] = {}

    def make_client(self, name: str, region: str, zone: int = 1) -> SpiderClient:
        """Clients talk to the whole replica group, f+1 matching replies."""
        client = SpiderClient(
            self.sim,
            name,
            Site(region, zone),
            "bft",
            self.replicas,
            fe=self.f,
        )
        self.network.register(client)
        self.clients[name] = client
        return client

    @property
    def leader_region(self) -> str:
        return self.replicas[0].site.region
