"""The HFT baseline: Steward-style hierarchical replication (paper Fig. 1b).

Each *site* (region) hosts a cluster of ``3f + 1`` replicas.  Within a
site, replicas jointly produce threshold-signed messages, so an entire
site can vouch for a statement with one constant-size authenticator; a
correct site then only fails by crashing, which lets the *wide-area*
protocol between sites be merely crash-tolerant (majority quorums).

Protocol (normal case):

1. Clients submit requests to their local site; the site's representative
   forwards them to the leader site's representative.
2. The leader-site representative assigns a global sequence number and has
   its site threshold-sign a ``Proposal`` (one local share round).
3. The ``Proposal`` goes to all sites; each site threshold-signs an
   ``Accept`` (another local share round) and exchanges it with all sites.
4. A replica executes sequence number ``s`` once it holds the Proposal and
   accepts from a majority of sites (the Proposal counts as the leader
   site's accept), in order; the client's site replies to the client.

Fault handling implements representative rotation inside a site on
timeout.  Steward's leader-site replacement and its recovery subprotocols
are out of scope (see DESIGN.md); the paper's evaluation exercises the
normal case only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.app.statemachine import StateMachine, is_read_only
from repro.core.client import SpiderClient
from repro.core.messages import (
    ClientRequest,
    Reply,
    RequestWrapper,
    WeakRead,
    WeakReadReply,
)
from repro.crypto.primitives import Digestible, attach_auth, make_mac, verify, verify_mac_vector
from repro.crypto.threshold import (
    ThresholdSignature,
    combine_shares,
    sign_share,
    verify_threshold,
)
from repro.errors import ConfigurationError
from repro.net import Network, Site, Topology
from repro.net.message import Message
from repro.sim import Simulator
from repro.sim.routing import RoutedNode

PROPOSAL = "proposal"
ACCEPT = "accept"


@dataclass(frozen=True)
class SiteForward(Message, Digestible):
    """A site forwards a validated client request to the leader site."""

    request: RequestWrapper
    site: str
    sender: str

    def payload_size(self) -> int:
        return self.request.payload_size() + 16


@dataclass(frozen=True)
class ShareRequest(Message, Digestible):
    """The site representative asks peers for a threshold share."""

    kind: str  # PROPOSAL or ACCEPT
    seq: int
    payload_digest: int
    request: Optional[RequestWrapper]
    sender: str

    def payload_size(self) -> int:
        size = 24
        if self.request is not None:
            size += self.request.payload_size()
        return size


@dataclass(frozen=True)
class Share(Message, Digestible):
    """One replica's threshold share, returned to the representative."""

    kind: str
    seq: int
    share: Any  # ThresholdSigShare
    sender: str

    def payload_size(self) -> int:
        return 16 + 128


@dataclass(frozen=True)
class Proposal(Message, Digestible):
    """Leader site's threshold-signed global ordering decision."""

    seq: int
    request: RequestWrapper
    tsig: ThresholdSignature
    site: str
    sender: str

    def payload_size(self) -> int:
        return 16 + self.request.payload_size() + 128


@dataclass(frozen=True)
class Accept(Message, Digestible):
    """A site's threshold-signed acknowledgement of a Proposal."""

    seq: int
    payload_digest: int
    tsig: ThresholdSignature
    site: str
    sender: str

    def payload_size(self) -> int:
        return 24 + 128


def _proposal_content(seq: int, payload_digest: int) -> Tuple:
    return ("hft-proposal", seq, payload_digest)


def _accept_content(seq: int, payload_digest: int, site: str) -> Tuple:
    return ("hft-accept", seq, payload_digest, site)


class HftReplica(RoutedNode):
    """One replica of one HFT site."""

    def __init__(self, sim, name, site: Site, site_id: str, index: int, app: StateMachine, f: int = 1):
        super().__init__(sim, name, site)
        self.site_id = site_id
        self.index = index
        self.app = app
        self.f = f
        self.threshold = 2 * f + 1

        self.system: Optional["HftSystem"] = None
        self.local_view = 0  # rotates the site representative
        self.sn = 0  # last executed global sequence number
        self.next_seq = 1  # leader-site rep: next sequence to assign
        self.t: Dict[str, int] = {}
        self.u: Dict[str, Tuple[int, Any]] = {}
        self.assigned: Dict[Tuple[str, int], int] = {}  # (client, tc) -> seq
        self.proposal_payloads: Dict[int, RequestWrapper] = {}  # rep only
        self.signed: Dict[Tuple[str, int], int] = {}  # (kind, seq) -> digest
        self.shares: Dict[Tuple[str, int], Dict[str, Any]] = {}
        self.proposals: Dict[int, Proposal] = {}
        self.accepts: Dict[int, set] = {}
        self.pending: Dict[str, dict] = {}  # client -> retry state
        self.leader_target = 0  # which leader-site replica we contact
        self.executed_count = 0
        self.timeout_ms = 3000.0
        self.set_default_handler(self._on_message)

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    @property
    def site_peers(self) -> List["HftReplica"]:
        return self.system.sites[self.site_id]

    @property
    def is_rep(self) -> bool:
        peers = self.site_peers
        return peers[self.local_view % len(peers)] is self

    def _rep_of(self, site_id: str) -> "HftReplica":
        peers = self.system.sites[site_id]
        return peers[self.leader_target % len(peers)]

    def _local_rep(self) -> "HftReplica":
        peers = self.site_peers
        return peers[self.local_view % len(peers)]

    @property
    def is_leader_site(self) -> bool:
        return self.site_id == self.system.leader_site

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def _on_message(self, src, message: Any) -> None:
        if isinstance(message, ClientRequest):
            self._on_client_request(src, message)
        elif isinstance(message, WeakRead):
            self._on_weak_read(src, message)
        elif isinstance(message, SiteForward):
            self._on_site_forward(message)
        elif isinstance(message, ShareRequest):
            self._on_share_request(src, message)
        elif isinstance(message, Share):
            self._on_share(message)
        elif isinstance(message, Proposal):
            self._on_proposal(message)
        elif isinstance(message, Accept):
            self._on_accept(message)

    # ------------------------------------------------------------------
    # Client requests
    # ------------------------------------------------------------------
    def _on_client_request(self, src, message: ClientRequest) -> None:
        body = message.body
        if body.client != src.name:
            return
        if not verify_mac_vector(message.auth, body, body.client, self.name):
            return
        cached = self.u.get(body.client)
        if body.counter <= self.t.get(body.client, 0):
            if cached is not None and cached[0] == body.counter:
                self._send_reply(body.client, cached[0], cached[1])
            return
        if not verify(message.signature, body, signer=body.client):
            return
        self.t[body.client] = body.counter
        wrapper = RequestWrapper(body=body, signature=message.signature, group=self.site_id)
        state = {"wrapper": wrapper, "counter": body.counter, "timer": None}
        self.pending[body.client] = state
        self._dispatch_request(wrapper)
        state["timer"] = self.set_timeout(self.timeout_ms, self._on_request_timeout, body.client)

    def _dispatch_request(self, wrapper: RequestWrapper) -> None:
        if self.is_leader_site:
            if self.is_rep:
                self._assign_and_propose(wrapper)
            else:
                self.send(self._local_rep(), SiteForward(wrapper, self.site_id, self.name))
        elif self.is_rep:
            self.send(
                self._rep_of(self.system.leader_site),
                SiteForward(wrapper, self.site_id, self.name),
            )

    def _on_request_timeout(self, client: str) -> None:
        state = self.pending.get(client)
        if state is None:
            return
        # Suspect the current representative: rotate our own site's rep and
        # the leader-site replica we target, then retry (local view change;
        # Steward's full timeout coordination is out of scope).
        self.local_view += 1
        self.leader_target += 1
        self._dispatch_request(state["wrapper"])
        state["timer"] = self.set_timeout(self.timeout_ms, self._on_request_timeout, client)

    def _on_weak_read(self, src, message: WeakRead) -> None:
        if message.client != src.name:
            return
        if not verify_mac_vector(message.auth, message, message.client, self.name):
            return
        if not is_read_only(message.operation):
            return
        result = self.app.execute(message.operation)
        reply = WeakReadReply(result=result, nonce=message.nonce, sender=self.name)
        reply = attach_auth(reply, mac=make_mac(self.name, message.client, reply))
        self.send(src, reply)

    # ------------------------------------------------------------------
    # Leader-site ordering
    # ------------------------------------------------------------------
    def _on_site_forward(self, message: SiteForward) -> None:
        if not self.is_leader_site:
            return
        if self.is_rep:
            self._assign_and_propose(message.request)
            return
        # Not the representative: relay to the current one, and watch the
        # request so a faulty rep triggers our local rotation too.
        body = message.request.body
        if body.counter <= self._executed_counter(body.client):
            return
        state = self.pending.get(body.client)
        if state is None or state["counter"] < body.counter:
            if state is not None and state["timer"] is not None:
                state["timer"].cancel()
            state = {"wrapper": message.request, "counter": body.counter, "timer": None}
            self.pending[body.client] = state
            state["timer"] = self.set_timeout(
                self.timeout_ms, self._on_request_timeout, body.client
            )
        self.send(self._local_rep(), message)

    def _assign_and_propose(self, wrapper: RequestWrapper) -> None:
        body = wrapper.body
        key = (body.client, body.counter)
        if key in self.assigned or body.counter <= self._executed_counter(body.client):
            return
        seq = self.next_seq
        self.next_seq += 1
        self.assigned[key] = seq
        self.proposal_payloads[seq] = wrapper
        self._request_shares(PROPOSAL, seq, wrapper)

    def _executed_counter(self, client: str) -> int:
        cached = self.u.get(client)
        return cached[0] if cached is not None else 0

    def _request_shares(self, kind: str, seq: int, wrapper: Optional[RequestWrapper]) -> None:
        from repro.crypto.primitives import digest as digest_fn

        if wrapper is None:
            wrapper = self.proposals[seq].request
            if kind == PROPOSAL:
                self.proposal_payloads.setdefault(seq, wrapper)
        payload_digest = digest_fn(wrapper)
        if kind == ACCEPT:
            wrapper = None  # accepts carry only the digest
        request = ShareRequest(
            kind=kind,
            seq=seq,
            payload_digest=payload_digest,
            request=wrapper,
            sender=self.name,
        )
        for peer in self.site_peers:
            if peer is self:
                self.run_task(self._on_share_request, self, request)
            else:
                self.send(peer, request)

    def _on_share_request(self, src, message: ShareRequest) -> None:
        if message.sender not in {peer.name for peer in self.site_peers}:
            return
        key = (message.kind, message.seq)
        previous = self.signed.get(key)
        if previous is not None and previous != message.payload_digest:
            return  # refuse to double-sign a conflicting statement
        self.signed[key] = message.payload_digest
        if message.kind == PROPOSAL and message.request is not None:
            content = _proposal_content(message.seq, message.payload_digest)
        else:
            content = _accept_content(message.seq, message.payload_digest, self.site_id)
        share = sign_share(f"site-{self.site_id}", self.name, content)
        reply = Share(kind=message.kind, seq=message.seq, share=share, sender=self.name)
        rep = self.network.nodes.get(message.sender)
        if rep is self:
            self.run_task(self._on_share, reply)
        elif rep is not None:
            self.send(rep, reply)

    def _on_share(self, message: Share) -> None:
        key = (message.kind, message.seq)
        collected = self.shares.setdefault(key, {})
        if message.sender in collected:
            return
        collected[message.sender] = message.share
        if len(collected) < self.threshold:
            return
        expected = self.signed.get(key)
        if expected is None:
            return
        if message.kind == PROPOSAL:
            content = _proposal_content(message.seq, expected)
        else:
            content = _accept_content(message.seq, expected, self.site_id)
        tsig = combine_shares(collected.values(), self.threshold, content)
        if tsig is None:
            return
        del self.shares[key]
        if message.kind == PROPOSAL:
            self._broadcast_proposal(message.seq, tsig)
        else:
            self._broadcast_accept(message.seq, expected, tsig)

    def _broadcast_proposal(self, seq: int, tsig: ThresholdSignature) -> None:
        wrapper = self.proposal_payloads.get(seq)
        if wrapper is None:
            return
        proposal = Proposal(seq=seq, request=wrapper, tsig=tsig, site=self.site_id, sender=self.name)
        for site_id, peers in self.system.sites.items():
            for peer in peers:
                if peer is self:
                    self.run_task(self._on_proposal, proposal)
                else:
                    self.send(peer, proposal)

    # ------------------------------------------------------------------
    # Proposal / Accept processing (wide-area, crash-tolerant)
    # ------------------------------------------------------------------
    def _on_proposal(self, message: Proposal) -> None:
        from repro.crypto.primitives import digest as digest_fn

        payload_digest = digest_fn(message.request)
        content = _proposal_content(message.seq, payload_digest)
        if not verify_threshold(message.tsig, content, group=f"site-{message.site}"):
            return
        if message.site != self.system.leader_site:
            return
        if message.seq in self.proposals:
            return
        self.proposals[message.seq] = message
        # The proposal is the leader site's accept.
        self.accepts.setdefault(message.seq, set()).add(message.site)
        if self.is_rep and self.site_id != message.site:
            self._request_shares(ACCEPT, message.seq, None)
        self._try_execute()

    def _broadcast_accept(self, seq: int, payload_digest: int, tsig: ThresholdSignature) -> None:
        accept = Accept(
            seq=seq,
            payload_digest=payload_digest,
            tsig=tsig,
            site=self.site_id,
            sender=self.name,
        )
        for site_id, peers in self.system.sites.items():
            for peer in peers:
                if peer is self:
                    self.run_task(self._on_accept, accept)
                else:
                    self.send(peer, accept)

    def _on_accept(self, message: Accept) -> None:
        content = _accept_content(message.seq, message.payload_digest, message.site)
        if not verify_threshold(message.tsig, content, group=f"site-{message.site}"):
            return
        self.accepts.setdefault(message.seq, set()).add(message.site)
        self._try_execute()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _try_execute(self) -> None:
        majority = len(self.system.sites) // 2 + 1
        while True:
            seq = self.sn + 1
            proposal = self.proposals.get(seq)
            if proposal is None or len(self.accepts.get(seq, ())) < majority:
                return
            self.sn = seq
            self._execute(proposal.request)

    def _execute(self, wrapper: RequestWrapper) -> None:
        body = wrapper.body
        cached = self.u.get(body.client)
        if cached is not None and cached[0] >= body.counter:
            return
        result = self.app.execute(body.operation)
        self.executed_count += 1
        self.u[body.client] = (body.counter, result)
        self.t[body.client] = max(self.t.get(body.client, 0), body.counter)
        state = self.pending.pop(body.client, None)
        if state is not None and state["timer"] is not None:
            state["timer"].cancel()
        if wrapper.group == self.site_id:
            self._send_reply(body.client, body.counter, result)

    def _send_reply(self, client: str, counter: int, result: Any) -> None:
        target = self.network.nodes.get(client) if self.network else None
        if target is None:
            return
        reply = Reply(result=result, counter=counter, sender=self.name, group=self.site_id)
        reply = attach_auth(reply, mac=make_mac(self.name, client, reply))
        self.send(target, reply)


class HftSystem:
    """Builder for the HFT baseline: one 3f+1 cluster per region.

    The first region in ``regions`` is the leader site (rotate the list to
    change it, matching the paper's "Leader site in V/O/I/T" runs).
    """

    def __init__(
        self,
        sim: Simulator,
        regions: List[str],
        app_factory,
        f: int = 1,
        network: Optional[Network] = None,
        site_layout: Optional[Dict[str, List[Site]]] = None,
    ):
        if len(regions) < 2:
            raise ConfigurationError("HFT needs at least two sites")
        self.sim = sim
        self.network = network or Network(sim, Topology())
        self.leader_site = regions[0]
        self.sites: Dict[str, List[HftReplica]] = {}
        self.f = f
        for region in regions:
            cluster = []
            placement = (site_layout or {}).get(region)
            if placement is not None and len(placement) < 3 * f + 1:
                raise ConfigurationError(f"site layout for {region} too small")
            for index in range(3 * f + 1):
                where = placement[index] if placement else Site(region, index + 1)
                replica = HftReplica(
                    sim,
                    f"hft-{region}-{index}",
                    where,
                    region,
                    index,
                    app_factory(),
                    f=f,
                )
                self.network.register(replica)
                cluster.append(replica)
            self.sites[region] = cluster
        for cluster in self.sites.values():
            for replica in cluster:
                replica.system = self
        self.clients: Dict[str, SpiderClient] = {}

    def make_client(
        self, name: str, region: str, zone: int = 1, site_region: Optional[str] = None
    ) -> SpiderClient:
        """Clients use their local site cluster; f+1 matching replies.

        ``site_region`` lets a client in a region without a site (e.g. the
        Sao Paulo joiners of Fig. 10) use the nearest existing cluster.
        """
        site_replicas = self.sites[site_region or region]
        client = SpiderClient(
            self.sim,
            name,
            Site(region, zone),
            region,
            site_replicas,
            fe=self.f,
        )
        self.network.register(client)
        self.clients[name] = client
        return client
