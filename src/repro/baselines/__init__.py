"""Baseline system architectures the paper evaluates against Spider.

* :mod:`repro.baselines.bft` — **BFT**: one PBFT replica per region, the
  whole protocol runs over wide-area links (paper Fig. 1a).  With vote
  weights it becomes **BFT-WV** (WHEAT-style weighted voting, Fig. 10).
* :mod:`repro.baselines.hft` — **HFT**: a Steward-style hierarchical
  architecture (paper Fig. 1b): a BFT cluster per site, threshold-signed
  site messages, and a crash-tolerant wide-area protocol between sites.
"""

from repro.baselines.bft import BftReplica, BftSystem
from repro.baselines.hft import HftReplica, HftSystem

__all__ = ["BftReplica", "BftSystem", "HftReplica", "HftSystem"]
