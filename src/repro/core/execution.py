"""Spider execution replicas (paper Figs. 5 and 16).

An execution replica validates client requests, forwards them to the
agreement group through the request channel, processes the totally ordered
``Execute`` stream from the commit channel, answers weakly consistent reads
locally, and checkpoints its state every ``k_e`` agreed requests.

With request batching enabled (``SpiderConfig.batch_size > 1``) one
``Execute`` per sequence number carries a whole batch; the replica applies
its items strictly in order — emitting one per-client ``Reply`` per
contained request — and advances the checkpoint counter by the batch
length, so checkpoint frequency tracks executed requests rather than
sequence numbers.  With the default ``batch_size=1`` this degenerates to
the paper's every-``k_e``-sequence-numbers rule bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.app.statemachine import StateMachine, is_read_only
from repro.checkpoints import CheckpointComponent
from repro.core.config import SpiderConfig
from repro.core.messages import (
    ClientRequest,
    CloseSession,
    Execute,
    Reply,
    RequestWrapper,
    RetireClient,
    WeakRead,
    WeakReadReply,
)
from repro.crypto.primitives import attach_auth, make_mac, verify, verify_mac_vector
from repro.elastic.book import ElasticBook
from repro.elastic.messages import ElasticAck
from repro.elastic.rangemap import slot_of
from repro.irmc import IrmcConfig, TooOld
from repro.irmc.rc import RcReceiverEndpoint, RcSenderEndpoint
from repro.irmc.sc import ScReceiverEndpoint, ScSenderEndpoint
from repro.sim.process import Process, sleep
from repro.sim.routing import RoutedNode


class ExecutionReplica(RoutedNode):
    """One member of an execution group.

    Lifecycle: construct, then :meth:`setup` once the group membership and
    the agreement group are known; the main loop starts immediately.
    """

    def __init__(self, sim, name, site, group_id: str, app: StateMachine, config: SpiderConfig):
        super().__init__(sim, name, site)
        self.group_id = group_id
        self.app = app
        self.config = config

        self.sn = 0  # sequence number of last processed Execute
        self.t: Dict[str, int] = {}  # latest forwarded counter per client
        #: reply cache: client -> (counter, result | PLACEHOLDER); bounded
        #: under churn by agreed :class:`RetireClient` commands — the
        #: ordered stream pops a retired client's entry at the same
        #: sequence number on every replica, keeping it checkpoint-safe.
        self.u: Dict[str, Tuple[int, Any]] = {}

        self.group_nodes = []
        self.agreement_nodes = []
        self.request_tx = None  # request-channel sender endpoint
        self.commit_rx = None  # commit-channel receiver endpoint
        self.cp: Optional[CheckpointComponent] = None
        self._main: Optional[Process] = None
        self.executed_count = 0
        self.weak_read_count = 0
        self.checkpoints_applied = 0
        #: agreed requests processed since the last own checkpoint; batched
        #: Executes advance this by their batch length (docstring above).
        self._ops_since_cp = 0
        #: range-handover bookkeeping (sealed/dropped ranges, phase acks);
        #: allocated lazily by the first MoveRange marker so single-epoch
        #: deployments keep their historical checkpoint format bit-for-bit.
        self.elastic: Optional[ElasticBook] = None

        self.set_default_handler(self._on_client_message)

    PLACEHOLDER = "__placeholder__"

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def setup(self, group_nodes, agreement_nodes) -> None:
        """Create IRMC endpoints and the checkpoint component, start loops."""
        self.group_nodes = list(group_nodes)
        self.agreement_nodes = list(agreement_nodes)
        config = self.config
        request_cfg = IrmcConfig(fs=config.fe, fr=config.fa, capacity=config.request_capacity)
        commit_cfg = IrmcConfig(fs=config.fa, fr=config.fe, capacity=config.commit_channel_capacity)
        if config.irmc_kind == "rc":
            sender_cls, receiver_cls = RcSenderEndpoint, RcReceiverEndpoint
        else:
            sender_cls, receiver_cls = ScSenderEndpoint, ScReceiverEndpoint
        self.request_tx = sender_cls(
            self, f"req-{self.group_id}", group_nodes, agreement_nodes, request_cfg
        )
        # Whatever retires the request subchannel — CloseSession, an agreed
        # RetireClient from the commit stream, or fr+1 receiver RetireEchoes
        # after this replica slept through the close — the forwarded-counter
        # book must go with it, or ``t`` leaks one entry per churned client.
        self.request_tx.on_subchannel_retired = lambda client: self.t.pop(client, None)
        self.commit_rx = receiver_cls(
            self, f"com-{self.group_id}", group_nodes, agreement_nodes, commit_cfg
        )
        # All execution groups share one checkpoint routing tag so that a
        # trailing group can fetch stable checkpoints from *other* groups
        # (Section 3.5); certificates remain group-scoped via signatures.
        self.cp = CheckpointComponent(
            self,
            "cp-exec",
            group_nodes,
            config.fe,
            self._on_stable_checkpoint,
            state_size_fn=self._checkpoint_size,
        )
        self._main = Process(self.sim, self._main_loop(), node=self, name=f"{self.name}.main")
        self.add_recovery_hook(self._boot_after_recovery)
        #: the application's genesis state, for rebooting after disk loss
        self._pristine_app = self.app.snapshot()
        self.add_wipe_hook(self._on_node_wipe)

    def _on_node_wipe(self) -> None:
        """Durable-state loss: reboot with genesis application state.

        Runs synchronously inside ``node.recover()`` before the recovery
        hooks.  The checkpoint store and IRMC endpoints wipe themselves;
        this hook resets the execution bookkeeping and rolls the
        application back to its pristine snapshot.  The recovery boot's
        ``fetch_latest`` then performs a full checkpoint install
        (``seq >= sn == 0``) and the main loop replays the remaining
        commit-channel suffix on top.
        """
        self.sn = 0
        self.t = {}
        self.u = {}
        self._ops_since_cp = 0
        self.elastic = None
        self.app.restore(self._pristine_app)

    def _boot_after_recovery(self) -> None:
        """Respawn the driver process and catch up from a stable checkpoint.

        A crash takes the main loop's in-flight resumption with it; the
        old :class:`Process` is stopped (it may still hold a live
        continuation if the crash window fell between resumptions) and a
        fresh one started at the preserved ``sn``.  The boot fetch pulls
        the group's newest stable checkpoint in case the commit-channel
        window moved past us while we were down — the main loop's
        ``TooOld`` handling then lands on the transferred state instead of
        spinning.
        """
        if self._main is not None:
            self._main.stop()
        self._main = Process(self.sim, self._main_loop(), node=self, name=f"{self.name}.main")
        if self.cp is not None:
            self.cp.fetch_latest()

    def set_checkpoint_providers(self, providers) -> None:
        """Nodes (possibly in other groups) to query for missed checkpoints."""
        if self.cp is not None:
            self.cp.providers = list(providers)

    # ------------------------------------------------------------------
    # Client-facing handlers (Fig. 16 L. 8-22)
    # ------------------------------------------------------------------
    def _on_client_message(self, src, message: Any) -> None:
        if isinstance(message, ClientRequest):
            self._on_request(src, message)
        elif isinstance(message, WeakRead):
            self._on_weak_read(src, message)
        elif isinstance(message, CloseSession):
            self._on_close_session(src, message)

    def _on_request(self, src, message: ClientRequest) -> None:
        body = message.body
        if body.client != src.name:
            return
        if self.request_tx.is_retired(body.client):
            # The session retired; even a valid straggler must not touch
            # the request channel again (it would re-grow retired books)
            # nor re-seed ``t``/``u`` for a name everyone else released.
            return
        if not verify_mac_vector(message.auth, body, body.client, self.name):
            return
        cached = self.u.get(body.client)
        if body.counter <= self.t.get(body.client, 0):
            if cached is not None and cached[0] == body.counter and cached[1] is not self.PLACEHOLDER:
                self._send_reply(body.client, cached[0], cached[1])
            elif body.counter == self.t.get(body.client, 0):
                # Retry for the latest request with no result yet: re-offer
                # it to the request channel (idempotent there) in case the
                # original forward was lost on the wide-area link.
                if verify(message.signature, body, signer=body.client):
                    wrapper = RequestWrapper(
                        body=body, signature=message.signature, group=self.group_id
                    )
                    self.request_tx.send(body.client, body.counter, wrapper)
            return
        if not verify(message.signature, body, signer=body.client):
            return
        self.t[body.client] = body.counter
        self.request_tx.move_window(body.client, body.counter)
        wrapper = RequestWrapper(
            body=body, signature=message.signature, group=self.group_id
        )
        self.request_tx.send(body.client, body.counter, wrapper)

    def _on_close_session(self, src, message: CloseSession) -> None:
        """Retire a closing client's request subchannel.

        The forwarded-counter book ``t`` is dropped too (it is replica
        local — unlike the reply cache ``u``, which is part of the
        checkpointed state and only shrinks deterministically, via the
        ordered stream).  A stale CloseSession (counter below the
        client's forwarded frontier) is ignored: it was signed before
        requests that are still live.  The close is then *escalated*: the
        replica submits a :class:`RetireClient` command (carrying the
        client's close signature as its authority) to the agreement
        group, so the agreement-side per-client books — ``t``/``t+``,
        reply caches, receiver channel books — retire too once it is
        ordered.  Every replica in the group escalates the same command;
        the ordering layer deduplicates the identical payloads.
        """
        if message.client != src.name:
            return
        if not verify_mac_vector(message.auth, message, message.client, self.name):
            return
        if message.counter < self.t.get(message.client, 0):
            return
        if not verify(message.signature, message, signer=message.client):
            return
        self.request_tx.retire_subchannel(message.client)
        self.t.pop(message.client, None)
        command = RetireClient(
            client=message.client,
            counter=message.counter,
            close_signature=message.signature,
        )
        for agreement_node in self.agreement_nodes:
            self.send(agreement_node, command)

    def _on_weak_read(self, src, message: WeakRead) -> None:
        if message.client != src.name:
            return
        if not verify_mac_vector(message.auth, message, message.client, self.name):
            return
        if not is_read_only(message.operation):
            return
        result = self.app.execute(message.operation)
        self.weak_read_count += 1
        reply = WeakReadReply(result=result, nonce=message.nonce, sender=self.name)
        reply = attach_auth(reply, mac=make_mac(self.name, message.client, reply))
        self.send(src, reply)

    # ------------------------------------------------------------------
    # Main loop (Fig. 16 L. 24-40)
    # ------------------------------------------------------------------
    def _main_loop(self):
        while True:
            result = yield self.commit_rx.receive(0, self.sn + 1)
            if isinstance(result, TooOld):
                # We missed Executes: find a stable checkpoint, possibly in
                # another group (Section 3.5), then retry.
                self.cp.fetch_cp(self.sn + 1)
                yield sleep(self.config.fetch_retry_ms)
                continue
            self._process_execute(result)

    def _process_execute(self, execute: Execute) -> None:
        self.sn += 1
        if execute.batch is not None:
            for item in execute.batch:
                if isinstance(item, RequestWrapper):
                    self._apply_request(item)
                else:
                    self._apply_placeholder(item)
        elif execute.request is not None:
            self._apply_request(execute.request)
        elif execute.placeholder is not None:
            self._apply_placeholder(execute.placeholder)
        self._ops_since_cp += execute.num_requests()
        if self._ops_since_cp >= self.config.ke:
            # Carry the overflow so a batch straddling the boundary doesn't
            # stretch the cadence; a batch longer than 2*ke collapses its
            # crossings into this one checkpoint (only one is possible per
            # sequence number anyway) rather than storming on the next ones.
            self._ops_since_cp %= self.config.ke
            self.cp.gen_cp(self.sn, self._snapshot())

    def _apply_placeholder(self, placeholder: Tuple) -> None:
        if placeholder and placeholder[0] == "read":
            # Strong read handled by another group: remember the counter so
            # duplicate filtering stays consistent (paper Section 3.3).
            _, client, counter = placeholder
            cached = self.u.get(client)
            if cached is None or cached[0] < counter:
                self.u[client] = (counter, self.PLACEHOLDER)
        elif placeholder and placeholder[0] == "retire":
            # Agreed client retirement: drop the reply-cache and counter
            # books at the same sequence number as every other replica
            # (the pop is part of the checkpointed-state evolution), and
            # retire the request subchannel — a no-op where CloseSession
            # already did it, the healing path for a replica that was down
            # across the whole close and is catching up via this stream.
            _, client = placeholder
            self.u.pop(client, None)
            self.t.pop(client, None)
            self.request_tx.retire_subchannel(client)
        elif placeholder and placeholder[0] == "move-range":
            self._apply_move_range(placeholder)

    def _apply_move_range(self, marker: Tuple) -> None:
        """Apply one agreed handover phase (elastic keyspace).

        The marker is identical on every replica of every group of the
        shard (it rides the ordered stream like client retirement), so
        the book mutations and the ack payload are replicated
        deterministic state.  Re-application — a retried command ordered
        a second time, or replay after recovery — hits the ``done`` book
        and degenerates to an ack resend, which is exactly the liveness
        a coordinator that missed the first round of acks needs.
        """
        (_tag, phase, lo, hi, _src, dst, new_epoch, slots, admin, items, map_wire) = marker
        if self.elastic is None:
            self.elastic = ElasticBook(slots)
        book = self.elastic
        done_key = (phase, lo, hi, new_epoch)
        payload = book.done.get(done_key)
        if payload is None:
            if phase == "seal":
                # Freeze the range at this point of the agreed stream:
                # later ordered writes to it shed ``Migrating`` results,
                # so the exported cut is the sealed frontier exactly.
                book.sealed[(lo, hi)] = (new_epoch, dst)
                payload = ("sealed", self.app.export_keys(self._keys_in_range(lo, hi, slots)))
            elif phase == "install":
                # A shard can re-acquire a range it handed away earlier:
                # clear any stale sealed/dropped cover first, or every
                # ordered op on the returned range would shed forever.
                book.uncover(lo, hi)
                self.app.import_keys(items)
                payload = ("installed", len(items))
            elif phase == "commit":
                keys = self._keys_in_range(lo, hi, slots)
                self.app.drop_keys(keys)
                book.sealed.pop((lo, hi), None)
                book.dropped[(lo, hi)] = (new_epoch, map_wire)
                payload = ("dropped", len(keys))
            else:
                payload = ("unknown-phase", phase)
            book.done[done_key] = payload
        ack = ElasticAck(
            phase=phase,
            range_start=lo,
            range_end=hi,
            new_epoch=new_epoch,
            payload=payload,
            sender=self.name,
        )
        target = self.network.nodes.get(admin) if self.network else None
        if target is not None:
            ack = attach_auth(ack, mac=make_mac(self.name, admin, ack))
            self.send(target, ack)

    def _keys_in_range(self, lo: int, hi: int, slots: int) -> Tuple:
        """The application keys hashing into slot range ``[lo, hi)``.

        Recomputed from live state at the marker's stream position — no
        new in-range key can appear between seal and commit because
        sealed writes shed instead of executing, so this is stable even
        for a replica that adopted a checkpoint between the two phases.
        """
        return tuple(
            key for key in self.app.owned_keys() if lo <= slot_of(key, slots) < hi
        )

    def _apply_request(self, wrapper: RequestWrapper) -> None:
        body = wrapper.body
        client, counter = body.client, body.counter
        cached = self.u.get(client)
        if cached is not None and cached[0] >= counter:
            result = None if cached[0] > counter else cached[1]
        else:
            # Ordered op against a sealed/dropped range sheds a redirect
            # result instead of executing — same reply/cache path, so
            # exactly-once dedup still covers it, but application state
            # is untouched (the op re-executes at the new owner).
            shed = self.elastic.shed(body.operation) if self.elastic is not None else None
            if shed is not None:
                result = shed
            else:
                result = self.app.execute(body.operation)
                self.executed_count += 1
            self.u[client] = (counter, result)
            self.t[client] = max(self.t.get(client, 0), counter)
        if wrapper.group == self.group_id and result is not None and result is not self.PLACEHOLDER:
            self._send_reply(client, counter, result)

    def _send_reply(self, client: str, counter: int, result: Any) -> None:
        target = self.network.nodes.get(client) if self.network else None
        if target is None:
            return
        reply = Reply(result=result, counter=counter, sender=self.name, group=self.group_id)
        reply = attach_auth(reply, mac=make_mac(self.name, client, reply))
        self.send(target, reply)

    # ------------------------------------------------------------------
    # Checkpoints (Fig. 16 L. 39-48)
    # ------------------------------------------------------------------
    def _snapshot(self) -> Tuple:
        state = (tuple(sorted(self.u.items())), self.app.snapshot())
        if self._ops_since_cp:
            # The residual request count past the last ke boundary is part
            # of the replicated state: replicas adopting this checkpoint
            # must continue the cadence at the same point or the group
            # drifts onto different gen_cp sequence numbers (stability
            # needs fe+1 matching votes at the *same* seq).  Appended only
            # when nonzero — it is identical at every replica generating
            # the same seq, and always zero at batch_size=1, keeping those
            # snapshots byte-identical to the pre-batching format.
            state = state + (self._ops_since_cp,)
        if self.elastic is not None:
            # Same only-when-present rule as above: deployments that never
            # saw a MoveRange keep the historical snapshot shape.  The
            # tagged tuple is type-distinguishable from the int extra, so
            # restore parses extras by shape, not position.
            state = state + (self.elastic.to_wire(),)
        return state

    def _checkpoint_size(self, state) -> int:
        reply_cache = state[0]
        return 64 * max(1, len(reply_cache)) + self.app.state_size_bytes()

    def _on_stable_checkpoint(self, seq: int, state: Tuple) -> None:
        self.commit_rx.move_window(0, seq + 1)
        if seq >= self.sn:
            reply_cache, app_state = state[0], state[1]
            self.sn = seq
            self.u = dict(reply_cache)
            self.app.restore(app_state)
            self.checkpoints_applied += 1
            # Extras are parsed by shape: the residual-ops counter is an
            # int, the elastic book a tagged tuple; either may be absent.
            # Both are *replaced*, not merged — they are checkpointed
            # state, and a full install must not keep stale local books.
            self._ops_since_cp = 0
            elastic = None
            for extra in state[2:]:
                if isinstance(extra, int):
                    self._ops_since_cp = extra
                elif ElasticBook.is_wire(extra):
                    elastic = ElasticBook.from_wire(extra)
            self.elastic = elastic
