"""Spider agreement replicas (paper Figs. 5 and 17).

An agreement replica pulls validated requests out of the request channels
(one per-client subchannel loop per execution group), feeds them to the
agreement black-box (PBFT by default), and pushes the resulting ``Execute``
stream into every execution group's commit channel — waiting for only
``n_e - z`` channels per sequence number (global flow control, Section 3.5).
It also hosts the execution-replica registry and applies reconfiguration
commands (Section 3.6).

Request batching (``SpiderConfig.batch_size`` / ``batch_timeout_ms``): the
per-client loops still submit each validated request to the black-box
individually, but with ``batch_size > 1`` the consensus leader drains its
intake queue into :class:`~repro.consensus.interface.Batch` values using
the adaptive cut rule — propose when the size cap is reached or when
``batch_timeout_ms`` elapsed since the batch's first request, whichever
comes first.  A delivered batch occupies one sequence number; the replica
classifies its items in order (duplicate filtering, strong-read
placeholders, reconfiguration commands) and ships a single batched
``Execute`` through each commit channel, so one IRMC message and one
agreement checkpoint interval amortise over up to ``batch_size`` requests.
With the default ``batch_size=1`` the behaviour is bit-for-bit identical
to the unbatched protocol.

For the paper's Spider-0E variant (Fig. 9a) the replica can additionally
host the application itself (``execute_locally=True``): clients then talk
to the agreement group directly and no IRMCs exist.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Optional, Tuple

from repro.app.statemachine import StateMachine
from repro.checkpoints import CheckpointComponent
from repro.consensus.interface import Agreement, Batch
from repro.consensus.pbft.messages import is_noop
from repro.core.config import SpiderConfig
from repro.core.messages import (
    STRONG_READ,
    AddGroup,
    ClientRequest,
    CloseSession,
    Execute,
    RegistryInfo,
    RegistryQuery,
    RemoveGroup,
    Reply,
    RequestWrapper,
    RetireClient,
)
from repro.crypto.primitives import attach_auth, make_mac, sign, verify, verify_mac_vector
from repro.elastic.messages import MoveRange
from repro.irmc import IrmcConfig, TooOld
from repro.irmc.rc import RcReceiverEndpoint, RcSenderEndpoint
from repro.irmc.sc import ScReceiverEndpoint, ScSenderEndpoint
from repro.sim.futures import SimFuture, gather
from repro.sim.process import Process
from repro.sim.routing import RoutedNode


class _GroupChannels:
    """The IRMC pair an agreement replica maintains towards one group."""

    def __init__(self, group_id, members, request_rx, commit_tx):
        self.group_id = group_id
        self.members = tuple(members)
        self.request_rx = request_rx
        self.commit_tx = commit_tx
        self.client_loops: Dict[str, Process] = {}

    def close(self) -> None:
        for process in self.client_loops.values():
            process.stop()
        self.client_loops.clear()
        self.request_rx.close()
        self.commit_tx.close()


class AgreementReplica(RoutedNode):
    """One member of the agreement group."""

    def __init__(
        self,
        sim,
        name,
        site,
        config: SpiderConfig,
        execute_locally: bool = False,
        app: Optional[StateMachine] = None,
    ):
        super().__init__(sim, name, site)
        self.config = config
        self.execute_locally = execute_locally
        self.app = app

        self.sn = 0
        self.win_upper = config.ag_window
        self.t: Dict[str, int] = {}  # latest agreed counter per client
        self.t_plus: Dict[str, int] = {}  # next expected request per client
        self.hist = deque(maxlen=config.commit_channel_capacity)
        self.groups: Dict[str, _GroupChannels] = {}
        self.agreement_nodes = []
        self.ag: Optional[Agreement] = None
        self.cp: Optional[CheckpointComponent] = None
        self._win_future = SimFuture(name=f"{name}.win")
        self._delivery: Optional[Process] = None
        self.delivered_count = 0
        self.requests_delivered = 0  # individual requests across batches
        #: callbacks the system object installs to materialise topology
        #: changes (node lookup lives outside the protocol).
        self.resolve_nodes: Optional[Callable] = None
        self.on_membership_change: Optional[Callable] = None
        #: fired when an agreed RetireClient released a client's books;
        #: the deploy layer uses it to recycle the session name.
        self.on_client_retired: Optional[Callable] = None
        # Spider-0E state
        self.u: Dict[str, Tuple[int, Any]] = {}

        self.set_default_handler(self._on_direct_message)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def setup(self, agreement_nodes, agreement_factory) -> None:
        """Install the consensus black-box and start the delivery loop.

        ``agreement_factory(node, peers)`` returns an
        :class:`~repro.consensus.interface.Agreement`; by default the system
        passes a PBFT factory, but any implementation works (modularity).
        """
        self.agreement_nodes = list(agreement_nodes)
        self.ag = agreement_factory(self, self.agreement_nodes)
        self.cp = CheckpointComponent(
            self,
            "cp-ag",
            self.agreement_nodes,
            self.config.fa,
            self._on_stable_checkpoint,
        )
        self._delivery = Process(
            self.sim, self._delivery_loop(), node=self, name=f"{self.name}.deliver"
        )
        self.add_recovery_hook(self._boot_after_recovery)
        self.add_wipe_hook(self._on_node_wipe)

    def _on_node_wipe(self) -> None:
        """Durable-state loss: every replicated book reboots empty.

        Runs synchronously inside ``node.recover()`` before the recovery
        hooks.  The co-hosted components (consensus black-box, checkpoint
        store, IRMC endpoints) wipe themselves through their own hooks;
        this one resets the agreement bookkeeping.  The recovery boot then
        fetches the group's newest stable checkpoint — ``_on_stable_checkpoint``
        sees ``seq > sn == 0`` and performs a *full* install (books, hist,
        commit-channel replay), after which the black-box's state transfer
        replays the post-checkpoint suffix.
        """
        self.sn = 0
        self.win_upper = self.config.ag_window
        self.t = {}
        self.t_plus = {}
        self.hist = deque(maxlen=self.config.commit_channel_capacity)
        self.u = {}
        # The old future's waiters died with the crashed delivery loop.
        self._win_future = SimFuture(name=f"{self.name}.win")

    def _boot_after_recovery(self) -> None:
        """Respawn the driver processes after a crash/recover of this node.

        The delivery loop and the per-client request loops lose their
        in-flight resumptions with the crash; stop the old processes
        (they may still hold live continuations when the crash window fell
        between resumptions) and start fresh ones on the preserved state.
        The consensus black-box drops its orphaned delivery pull so the
        new loop can pull again, and the boot fetch adopts the group's
        newest stable checkpoint in case agreement moved past our window
        while we were down.  (The black-box itself — e.g. PBFT state
        transfer — rejoins through its own recovery hook.)
        """
        if self._delivery is not None:
            self._delivery.stop()
        if self.ag is not None:
            self.ag.reset_delivery()
        self._delivery = Process(
            self.sim, self._delivery_loop(), node=self, name=f"{self.name}.deliver"
        )
        for channels in self.groups.values():
            for client, process in list(channels.client_loops.items()):
                process.stop()
                channels.client_loops[client] = Process(
                    self.sim,
                    self._client_loop(channels, client),
                    node=self,
                    name=f"{self.name}.client.{client}",
                )
        if self.cp is not None:
            self.cp.fetch_latest()

    def connect_group(self, group_id: str, member_nodes) -> None:
        """Create the IRMC pair towards an execution group (Fig. 2)."""
        if group_id in self.groups:
            return
        config = self.config
        request_cfg = IrmcConfig(fs=config.fe, fr=config.fa, capacity=config.request_capacity)
        commit_cfg = IrmcConfig(fs=config.fa, fr=config.fe, capacity=config.commit_channel_capacity)
        if config.irmc_kind == "rc":
            sender_cls, receiver_cls = RcSenderEndpoint, RcReceiverEndpoint
        else:
            sender_cls, receiver_cls = ScSenderEndpoint, ScReceiverEndpoint
        request_rx = receiver_cls(
            self, f"req-{group_id}", self.agreement_nodes, member_nodes, request_cfg
        )
        commit_tx = sender_cls(
            self, f"com-{group_id}", self.agreement_nodes, member_nodes, commit_cfg
        )
        channels = _GroupChannels(group_id, [n.name for n in member_nodes], request_rx, commit_tx)
        self.groups[group_id] = channels
        request_rx.on_new_subchannel = lambda client: self._start_client_loop(
            channels, client
        )
        request_rx.on_subchannel_retired = lambda client: self._retire_client_loop(
            channels, client
        )

    def disconnect_group(self, group_id: str) -> None:
        channels = self.groups.pop(group_id, None)
        if channels is not None:
            channels.close()

    def registry_snapshot(self) -> Tuple:
        return tuple(
            sorted((gid, ch.members) for gid, ch in self.groups.items())
        )

    # ------------------------------------------------------------------
    # Per-client request loops (Fig. 17 L. 13-22)
    # ------------------------------------------------------------------
    def _start_client_loop(self, channels: _GroupChannels, client: str) -> None:
        if client in channels.client_loops:
            return
        channels.client_loops[client] = Process(
            self.sim,
            self._client_loop(channels, client),
            node=self,
            name=f"{self.name}.client.{client}",
        )

    def _retire_client_loop(self, channels: _GroupChannels, client: str) -> None:
        """The client's session closed (fs+1-vouched subchannel retirement):
        stop its request loop and drop the local next-expected cursor.  The
        agreed counter book ``t`` stays — it is replicated state (part of
        checkpoint snapshots), and keeping it preserves duplicate filtering
        should a Byzantine group replay the retired client's old requests."""
        process = channels.client_loops.pop(client, None)
        if process is not None:
            process.stop()
        self.t_plus.pop(client, None)

    def _client_loop(self, channels: _GroupChannels, client: str):
        while channels.group_id in self.groups:
            result = yield channels.request_rx.receive(
                client, self.t_plus.get(client, 1)
            )
            if isinstance(result, TooOld):
                # The client already moved on to a newer request.
                self.t_plus[client] = max(self.t_plus.get(client, 1), result.new_start)
            elif isinstance(result, RequestWrapper):
                self.ag.order(result)
                self.t_plus[client] = self.t_plus.get(client, 1) + 1

    # ------------------------------------------------------------------
    # Delivery loop (Fig. 17 L. 25-40)
    # ------------------------------------------------------------------
    def _delivery_loop(self):
        while True:
            seq, payload = yield self.ag.next_delivery()
            # "sleep until s <= max(win)" - periodic checkpoints gate how far
            # agreement may run ahead (Fig. 17 L. 27).
            while seq > self.win_upper:
                yield self._win_future
            if seq <= self.sn:
                continue  # skipped via checkpoint while we waited
            self.sn = seq
            executes = self._classify(seq, payload)
            self.delivered_count += 1
            self.requests_delivered += (
                len(payload.items) if isinstance(payload, Batch) else 1
            )
            futures = []
            for group_id, channels in list(self.groups.items()):
                futures.append(channels.commit_tx.send(0, seq, executes[group_id]))
            if futures:
                # Global flow control: proceed once n_e - z channels accepted
                # the Execute (Section 3.5); stragglers continue in the
                # background and are skipped via window moves.
                needed = max(0, len(futures) - self.config.z)
                yield gather(futures, needed)
            if self.execute_locally:
                self._execute_payload(payload)
            if seq % self.config.ka == 0:
                self.cp.gen_cp(seq, self._snapshot())

    def _classify(self, seq: int, payload: Any) -> Dict[str, Execute]:
        """Build the per-group Execute messages for one agreed payload."""
        if isinstance(payload, Batch):
            return self._classify_batch(seq, payload)
        noop = Execute(seq=seq, request=None, placeholder=("noop",))
        if is_noop(payload) or not isinstance(payload, RequestWrapper):
            if isinstance(payload, (AddGroup, RemoveGroup)):
                self._apply_reconfiguration(payload)
            elif isinstance(payload, RetireClient):
                if self._apply_client_retirement(payload):
                    # Every group's execution replicas must drop the
                    # client's reply-cache entry at this same sequence
                    # number, so ship the marker to all of them (and keep
                    # it in hist so replay matches live classification).
                    marker = Execute(
                        seq=seq, request=None, placeholder=("retire", payload.client)
                    )
                    self.hist.append(marker)
                    return {group_id: marker for group_id in self.groups}
            elif isinstance(payload, MoveRange):
                if self._accept_move_range(payload):
                    # A handover phase is deliberately *not* filtered for
                    # duplicates: a retried command (fresh nonce) must
                    # reach the execution replicas again so they resend
                    # the phase ack — re-application there is idempotent
                    # via the elastic book.  The marker strips the nonce,
                    # so hist replay reproduces identical bytes.
                    marker = Execute(seq=seq, request=None, placeholder=payload.marker())
                    self.hist.append(marker)
                    return {group_id: marker for group_id in self.groups}
            self.hist.append(noop)
            return {group_id: noop for group_id in self.groups}
        body = payload.body
        if body.counter <= self.t.get(body.client, 0):
            # Old or duplicate request: replace with a no-op (Fig. 17 L. 30).
            self.hist.append(noop)
            return {group_id: noop for group_id in self.groups}
        self.t[body.client] = body.counter
        self.t_plus[body.client] = max(body.counter + 1, self.t_plus.get(body.client, 1))
        full = Execute(seq=seq, request=payload)
        self.hist.append(full)
        if body.kind == STRONG_READ:
            # Only the client's group processes the read; all others receive
            # a placeholder with the counter value (Section 3.3).
            placeholder = Execute(
                seq=seq, request=None, placeholder=("read", body.client, body.counter)
            )
            return {
                group_id: full if group_id == payload.group else placeholder
                for group_id in self.groups
            }
        return {group_id: full for group_id in self.groups}

    def _classify_batch(self, seq: int, batch: Batch) -> Dict[str, Execute]:
        """Classify a batch item-by-item into per-group batched Executes.

        Applies the same rules as the single-request path — duplicate
        filtering against ``t``, strong-read placeholders for non-home
        groups, reconfiguration commands — but packs the per-item outcomes
        into one ``Execute`` per group so the commit channel still carries
        exactly one message per sequence number.
        """
        group_items: Dict[str, list] = {group_id: [] for group_id in self.groups}
        full_items: list = []

        def sync_groups() -> None:
            # Correct leaders never batch reconfiguration commands (they
            # are BATCHABLE = False), but a faulty leader may craft such a
            # batch; handle it deterministically: later items must reach
            # new groups (earlier slots are backfilled with no-ops),
            # removed groups drop out.
            for group_id in list(group_items):
                if group_id not in self.groups:
                    del group_items[group_id]
            for group_id in self.groups:
                group_items.setdefault(group_id, [("noop",)] * len(full_items))

        for item in batch.items:
            if is_noop(item) or not isinstance(item, RequestWrapper):
                if isinstance(item, RetireClient):
                    # RetireClient is BATCHABLE = False, but a faulty
                    # leader may batch one anyway; classify it like the
                    # single-payload path.  The slot stores the plain
                    # ("retire", client) tuple — identical in hist and
                    # every group — so replay needs no special variant.
                    if self._apply_client_retirement(item):
                        slot = ("retire", item.client)
                    else:
                        slot = ("noop",)
                    full_items.append(slot)
                    for items in group_items.values():
                        items.append(slot)
                    continue
                if isinstance(item, MoveRange):
                    # Also BATCHABLE = False; a faulty leader may batch one
                    # anyway.  Like RetireClient, the slot stores the plain
                    # marker tuple — identical in hist and every group.
                    slot = item.marker() if self._accept_move_range(item) else ("noop",)
                    full_items.append(slot)
                    for items in group_items.values():
                        items.append(slot)
                    continue
                if isinstance(item, (AddGroup, RemoveGroup)) and self._apply_reconfiguration(item):
                    sync_groups()
                    # hist keeps the *effective* command itself (groups
                    # only ever see a no-op slot) so replay can re-derive
                    # the per-group backfill in _variant_for_group; an
                    # ineffective duplicate stays a plain no-op slot so
                    # replay doesn't backfill where live delivery didn't.
                    full_items.append(item)
                else:
                    full_items.append(("noop",))
                for items in group_items.values():
                    items.append(("noop",))
                continue
            body = item.body
            if body.counter <= self.t.get(body.client, 0):
                # Old or duplicate request: a no-op slot (Fig. 17 L. 30).
                full_items.append(("noop",))
                for items in group_items.values():
                    items.append(("noop",))
                continue
            self.t[body.client] = body.counter
            self.t_plus[body.client] = max(
                body.counter + 1, self.t_plus.get(body.client, 1)
            )
            full_items.append(item)
            if body.kind == STRONG_READ:
                placeholder = ("read", body.client, body.counter)
                for group_id, items in group_items.items():
                    items.append(item if group_id == item.group else placeholder)
            else:
                for items in group_items.values():
                    items.append(item)
        self.hist.append(Execute(seq=seq, request=None, batch=tuple(full_items)))
        return {
            group_id: Execute(seq=seq, request=None, batch=tuple(items))
            for group_id, items in group_items.items()
        }

    def _variant_for_group(self, execute: Execute, group_id: str) -> Execute:
        """Rebuild the per-group form of a hist entry for replay.

        ``hist`` stores the full Execute, but strong reads are shipped in
        full only to the client's home group (Section 3.3); replaying the
        full form elsewhere would make recovered senders vouch different
        bytes than normal-path senders for the same channel position.
        """

        def item_variant(item):
            if (
                isinstance(item, RequestWrapper)
                and item.body.kind == STRONG_READ
                and item.group != group_id
            ):
                return ("read", item.body.client, item.body.counter)
            if isinstance(item, (AddGroup, RemoveGroup)):
                return ("noop",)  # groups only ever saw a no-op slot
            return item

        if execute.batch is not None:
            items = [item_variant(item) for item in execute.batch]
            # A group added by this very batch saw no-op slots up to and
            # including its AddGroup (the sync_groups backfill); reproduce
            # it so replayed bytes match the live per-group classification.
            for index, item in enumerate(execute.batch):
                if isinstance(item, AddGroup) and item.group == group_id:
                    items[: index + 1] = [("noop",)] * (index + 1)
            items = tuple(items)
            if items == execute.batch:
                return execute
            return Execute(seq=execute.seq, request=None, batch=items)
        wrapper = execute.request
        if (
            wrapper is not None
            and wrapper.body.kind == STRONG_READ
            and wrapper.group != group_id
        ):
            return Execute(
                seq=execute.seq,
                request=None,
                placeholder=("read", wrapper.body.client, wrapper.body.counter),
            )
        return execute

    # ------------------------------------------------------------------
    # Client retirement (agreed-book release)
    # ------------------------------------------------------------------
    def _apply_client_retirement(self, command: RetireClient) -> bool:
        """Apply an agreed client retirement; True iff it took effect.

        Authority is the client's own close signature, verified against
        the reconstructed :class:`CloseSession` content — whoever
        submitted the command is irrelevant.  A command whose pinned
        counter sits below the client's agreed frontier is stale (signed
        before requests that were later ordered) and classifies to a
        no-op, exactly like a duplicate request.

        An effective retirement drops the per-client agreement books that
        otherwise grow forever under session churn — the agreed-counter
        book ``t`` (and its checkpoint footprint), the next-expected
        cursor ``t+``, the 0E reply cache ``u`` — and retires the
        client's request-channel receiver books in every group (stopping
        the per-client loop and leaving the bounded tombstone that
        answers straggling senders with RetireEchoes).  All of this runs
        at the command's sequence number on every replica, so checkpoint
        snapshots stay in agreement.
        """
        close = CloseSession(client=command.client, counter=command.counter)
        if not verify(command.close_signature, close, signer=command.client):
            return False
        if command.counter < self.t.get(command.client, 0):
            return False
        self.t.pop(command.client, None)
        self.t_plus.pop(command.client, None)
        self.u.pop(command.client, None)
        for channels in self.groups.values():
            if not channels.request_rx.is_retired(command.client):
                channels.request_rx._retire_subchannel(command.client)
        if self.on_client_retired is not None:
            self.on_client_retired(command.client)
        return True

    def _accept_move_range(self, command: MoveRange) -> bool:
        """Deterministic validity check for an agreed handover phase.

        Authority is the coordinating admin's signature over the full
        command, verified identically at every replica when the command
        classifies (the submission-time check in ``_on_direct_message``
        is only a cheap pre-filter).  Range arithmetic is *not* checked
        here — the deploy-layer coordinator derives phases from a
        validated ``RangeMap.move`` and the execution-side book applies
        them idempotently, so agreement stays a pure ordering service
        for these commands, exactly as it is for AddGroup/RetireClient.
        """
        return command.admin in self.config.admins and verify(
            command.signature, command, signer=command.admin
        )

    # ------------------------------------------------------------------
    # Reconfiguration (Section 3.6)
    # ------------------------------------------------------------------
    def _apply_reconfiguration(self, command) -> bool:
        """Apply an agreed group-set change; True iff it changed anything."""
        changed = False
        if isinstance(command, AddGroup):
            if command.group in self.groups or self.resolve_nodes is None:
                return False
            members = self.resolve_nodes(command.members)
            if members is None:
                return False
            changed = True
            self.connect_group(command.group, members)
            channels = self.groups[command.group]
            # Tell the new group how far the system has progressed: anchor
            # its commit window at the oldest Execute hist can still replay
            # (everything older must come from an execution checkpoint of
            # another group), then replay hist into the fresh channel.
            start = self.hist[0].seq if self.hist else max(1, self.sn)
            channels.commit_tx.move_window(0, start)
            for execute in self.hist:
                channels.commit_tx.send(
                    0, execute.seq, self._variant_for_group(execute, command.group)
                )
        elif isinstance(command, RemoveGroup):
            changed = command.group in self.groups
            self.disconnect_group(command.group)
        if self.on_membership_change is not None:
            self.on_membership_change()
        return changed

    # ------------------------------------------------------------------
    # Direct messages: admin commands, registry queries, 0E clients
    # ------------------------------------------------------------------
    def _on_direct_message(self, src, message: Any) -> None:
        if isinstance(message, (AddGroup, RemoveGroup, MoveRange)):
            if message.admin not in self.config.admins or message.admin != src.name:
                return
            if not verify(message.signature, message, signer=message.admin):
                return
            self.ag.order(message)
        elif isinstance(message, RetireClient):
            # Escalated by execution replicas on CloseSession.  Accept
            # from anyone: the authority is the client signature inside,
            # checked now (cheap pre-filter) and again deterministically
            # when the agreed command classifies.
            close = CloseSession(client=message.client, counter=message.counter)
            if not verify(message.close_signature, close, signer=message.client):
                return
            if message.counter < self.t.get(message.client, 0):
                return
            self.ag.order(message)
        elif isinstance(message, RegistryQuery):
            self._answer_registry(src, message)
        elif isinstance(message, ClientRequest) and self.execute_locally:
            self._on_local_request(src, message)
        elif isinstance(message, CloseSession) and self.execute_locally:
            # Spider-0E: no execution replicas exist to escalate, so the
            # client's close lands here directly; wrap it into the same
            # agreed RetireClient path (releases ``t``/``u``).
            if message.client != src.name:
                return
            if not verify_mac_vector(message.auth, message, message.client, self.name):
                return
            if message.counter < self.t.get(message.client, 0):
                return
            if not verify(message.signature, message, signer=message.client):
                return
            self.ag.order(
                RetireClient(
                    client=message.client,
                    counter=message.counter,
                    close_signature=message.signature,
                )
            )

    def _answer_registry(self, src, message: RegistryQuery) -> None:
        info = RegistryInfo(
            groups=self.registry_snapshot(), nonce=message.nonce, sender=self.name
        )
        info = attach_auth(info, signature=sign(self.name, info))
        self.send(src, info)

    # ------------------------------------------------------------------
    # Spider-0E: local execution without IRMCs (Fig. 9a)
    # ------------------------------------------------------------------
    def _on_local_request(self, src, message: ClientRequest) -> None:
        body = message.body
        if body.client != src.name:
            return
        if not verify_mac_vector(message.auth, body, body.client, self.name):
            return
        cached = self.u.get(body.client)
        if body.counter <= self.t.get(body.client, 0):
            if cached is not None and cached[0] == body.counter:
                self._send_local_reply(body.client, cached[0], cached[1])
            return
        if not verify(message.signature, body, signer=body.client):
            return
        self.ag.order(RequestWrapper(body=body, signature=message.signature, group="ag"))

    def _execute_payload(self, payload: Any) -> None:
        if isinstance(payload, Batch):
            for item in payload.items:
                self._execute_payload(item)
            return
        if not isinstance(payload, RequestWrapper) or self.app is None:
            return
        body = payload.body
        cached = self.u.get(body.client)
        if cached is not None and cached[0] >= body.counter:
            return
        result = self.app.execute(body.operation)
        self.u[body.client] = (body.counter, result)
        self._send_local_reply(body.client, body.counter, result)

    def _send_local_reply(self, client: str, counter: int, result: Any) -> None:
        target = self.network.nodes.get(client) if self.network else None
        if target is None:
            return
        reply = Reply(result=result, counter=counter, sender=self.name, group="ag")
        reply = attach_auth(reply, mac=make_mac(self.name, client, reply))
        self.send(target, reply)

    # ------------------------------------------------------------------
    # Checkpoints (Fig. 17 L. 39-57)
    # ------------------------------------------------------------------
    def _snapshot(self) -> Tuple:
        state = (tuple(sorted(self.t.items())), tuple(self.hist))
        if self.execute_locally:
            state = state + (
                tuple(sorted(self.u.items())),
                self.app.snapshot() if self.app else None,
            )
        return state

    def _on_stable_checkpoint(self, seq: int, state: Tuple) -> None:
        t_items, hist_items = state[0], state[1]
        window_start = max(1, seq - len(hist_items) + 1)
        for channels in self.groups.values():
            channels.commit_tx.move_window(0, window_start)
        self.ag.gc(seq + 1)
        if seq > self.sn:
            old_sn = self.sn
            self.sn = seq
            self.t = dict(t_items)
            for client, counter in t_items:
                self.t_plus[client] = max(self.t_plus.get(client, 1), counter + 1)
            self.hist = deque(hist_items, maxlen=self.config.commit_channel_capacity)
            if self.execute_locally and len(state) >= 4:
                self.u = dict(state[2])
                if self.app is not None and state[3] is not None:
                    self.app.restore(state[3])
            # Replay the Executes we skipped into the commit channels
            # (Fig. 17 L. 52-56), in the per-group form normal delivery
            # would have sent (strong reads stay home-group-only).
            for group_id, channels in self.groups.items():
                for execute in hist_items:
                    if old_sn < execute.seq <= seq:
                        channels.commit_tx.send(
                            0, execute.seq, self._variant_for_group(execute, group_id)
                        )
        # Advance the agreement window past the new stable checkpoint.
        self.win_upper = seq + self.config.ag_window
        previous, self._win_future = self._win_future, SimFuture(name=f"{self.name}.win")
        previous.resolve(None)
