"""Spider — the paper's contribution (Sections 3, A.6).

A Spider deployment is a collection of loosely coupled replica groups:

* one **agreement group** (:class:`AgreementReplica` x ``3 fa + 1``) running
  a consensus black-box (PBFT by default) inside a single region,
* any number of **execution groups** (:class:`ExecutionReplica` x
  ``2 fe + 1``) hosting the application near clients,
* connected exclusively through IRMC pairs (request + commit channel), and
* accessed by :class:`SpiderClient` instances that submit writes, strongly
  consistent reads and weakly consistent reads.

:class:`Shard` wires a whole deployment together and supports
runtime addition/removal of execution groups (Section 3.6).
"""

from repro.core.agreement import AgreementReplica
from repro.core.client import AdminClient, SpiderClient
from repro.core.config import SpiderConfig
from repro.core.execution import ExecutionReplica
from repro.core.messages import (
    AddGroup,
    ClientRequest,
    Execute,
    RemoveGroup,
    Reply,
    RequestBody,
    RequestWrapper,
    WeakRead,
)
from repro.core.system import ExecutionGroup, Shard

__all__ = [
    "Shard",
    "ExecutionGroup",
    "SpiderConfig",
    "SpiderClient",
    "AdminClient",
    "AgreementReplica",
    "ExecutionReplica",
    "ClientRequest",
    "RequestBody",
    "RequestWrapper",
    "Execute",
    "Reply",
    "WeakRead",
    "AddGroup",
    "RemoveGroup",
]
