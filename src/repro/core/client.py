"""Spider clients (paper Fig. 15) and the privileged admin client."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.messages import (
    STRONG_READ,
    WRITE,
    AddGroup,
    ClientRequest,
    CloseSession,
    RegistryInfo,
    RegistryQuery,
    RemoveGroup,
    Reply,
    RequestBody,
    WeakRead,
    WeakReadReply,
)
from repro.crypto.primitives import attach_auth, make_mac_vector, sign, verify_mac
from repro.elastic.messages import ElasticAck, MoveRange
from repro.sim.futures import SimFuture
from repro.sim.node import Node


class SpiderClient(Node):
    """A client bound to (typically) its nearest execution group.

    The public entry points — :meth:`write`, :meth:`strong_read`,
    :meth:`weak_read` — return a :class:`SimFuture` resolving with the
    accepted result once ``f_e + 1`` matching replies arrived from distinct
    replicas of the target execution group.  Requests are retried until
    answered (Fig. 15 L. 11-13).
    """

    def __init__(self, sim, name, site, group_id, group_nodes, fe=1, retry_ms=4000.0):
        super().__init__(sim, name, site)
        self.group_id = group_id
        self.group_nodes = list(group_nodes)
        self.fe = fe
        self.retry_ms = retry_ms

        self.counter = 0  # t_c: strictly increasing request counter
        self.nonce = 0  # weak-read nonce (independent of t_c)
        self.closed = False
        #: optional callback fired once the close fully completes (all
        #: CloseSession announcements sent, no weak reads outstanding) —
        #: sessions use it to release the client object (network
        #: registration, builder dictionaries).
        self.on_closed = None
        self._open_announcements = 0
        self._close_finished = False
        #: groups this client previously targeted via switch_group — the
        #: session close must retire its subchannel on those too.
        self._former_groups: Dict[str, list] = {}
        self._pending: Optional[dict] = None
        self._weak_pending: Dict[int, dict] = {}
        self.completed: List[Tuple[str, float, float]] = []  # (kind, start, latency)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def write(self, operation: Tuple) -> SimFuture:
        """Submit a state-modifying operation with linearizable semantics."""
        return self._submit(operation, WRITE)

    def strong_read(self, operation: Tuple) -> SimFuture:
        """Submit a read that is totally ordered with all writes."""
        return self._submit(operation, STRONG_READ)

    def weak_read(self, operation: Tuple, fallback_after: int = 0) -> SimFuture:
        """Read directly from the local execution group (may be stale).

        Concurrent writes can leave the client with fewer than ``f_e + 1``
        matching replies; per Section 3.3 clients then retry, or — when
        ``fallback_after`` retries have failed — upgrade to a strongly
        consistent read, which is guaranteed to produce a stable result.
        ``fallback_after=0`` disables the upgrade (retry forever).
        """
        return self._direct_read(
            operation, self.fe + 1, "weak-read", fallback_after=fallback_after
        )

    def quorum_read(self, operation: Tuple, threshold: int) -> SimFuture:
        """Read-only fast path with a caller-chosen reply quorum.

        With ``threshold = 2f + 1`` this is the classic PBFT optimized
        (linearizable in the absence of concurrent writes) read used by the
        BFT baseline's strongly consistent reads.
        """
        return self._direct_read(operation, threshold, "quorum-read")

    def _direct_read(
        self, operation: Tuple, threshold: int, label: str, fallback_after: int = 0
    ) -> SimFuture:
        if self.closed:
            raise RuntimeError(f"client {self.name} is closed")
        self.nonce += 1
        future = SimFuture(name=f"{self.name}.{label}#{self.nonce}")
        state = {
            "future": future,
            "replies": {},
            "start": self.sim.now,
            "operation": operation,
            "nonce": self.nonce,
            "threshold": threshold,
            "label": label,
            "fallback_after": fallback_after,
            "attempts": 0,
        }
        self._weak_pending[self.nonce] = state
        self.run_task(self._send_weak, state)
        return future

    #: CloseSession transmissions per close (the message is re-announced
    #: ``retry_ms`` apart so replicas that were crashed or cut off during
    #: one transmission still learn of the retirement; processing is
    #: idempotent on every hop).
    CLOSE_ANNOUNCEMENTS = 3

    def close_session(self) -> None:
        """Retire this client's request subchannel (session close).

        Sent once the caller has no request in flight: the execution
        replicas drop the client's request-channel books and propagate
        the retirement to the agreement group (which stops the
        per-client loop), so churning clients leave no per-client window
        state behind.  The announcement repeats a bounded number of
        times so a replica that was down or partitioned for one
        transmission still retires (and still contributes its fs+1
        retirement voucher) when a later one lands.  The client name
        must not be reused afterwards — duplicate filtering remembers
        the old counters.
        """
        if self._pending is not None and not self._pending["future"].done:
            raise RuntimeError(
                f"client {self.name} cannot close with request "
                f"#{self.counter} in flight"
            )
        if self.closed:
            return
        self.closed = True
        body = CloseSession(client=self.name, counter=self.counter)
        signature = sign(self.name, body)  # group-independent: sign once
        # Every group this client ever targeted holds per-client channel
        # books — the current one and any it switched away from.
        targets = dict(self._former_groups)
        targets[self.group_id] = self.group_nodes
        self._open_announcements = len(targets)
        for nodes in targets.values():
            group_names = [node.name for node in nodes]
            message = attach_auth(
                body,
                signature=signature,
                auth=make_mac_vector(self.name, group_names, body),
            )
            self._announce_close(message, list(nodes), self.CLOSE_ANNOUNCEMENTS)

    def _announce_close(self, message, nodes, remaining: int) -> None:
        for replica in nodes:
            self.send(replica, message)
        if remaining > 1:
            self.set_timeout(
                self.retry_ms, self._announce_close, message, nodes, remaining - 1
            )
        else:
            self._open_announcements -= 1
            self._maybe_finish_close()

    def _maybe_finish_close(self) -> None:
        """Fire ``on_closed`` once the close fully completed: the last
        announcement went out on every group chain and no weak read is
        still retrying (replies to those must keep reaching us)."""
        if (
            self.closed
            and not self._close_finished
            and self._open_announcements == 0
            and not self._weak_pending
        ):
            self._close_finished = True
            if self.on_closed is not None:
                self.on_closed(self)

    def switch_group(self, group_id, group_nodes) -> None:
        """Direct requests at a different execution group (used when a
        group fails or is removed, or a closer one appears, Section 3.1).

        A request currently in flight is re-submitted to the new group
        under its existing counter; whichever group completes it first
        produces the accepted reply (duplicate filtering makes this safe).
        """
        if group_id != self.group_id:
            self._former_groups[self.group_id] = self.group_nodes
            self._former_groups.pop(group_id, None)
        self.group_id = group_id
        self.group_nodes = list(group_nodes)
        if self._pending is not None and not self._pending["future"].done:
            self._pending["replies"].clear()
            if self._pending.get("retry") is not None:
                self._pending["retry"].cancel()
            self.run_task(self._send_request)

    # ------------------------------------------------------------------
    # Write / strong-read path
    # ------------------------------------------------------------------
    def _submit(self, operation: Tuple, kind: str) -> SimFuture:
        if self.closed:
            # A write after close would silently re-open the retired
            # subchannel (the replicas' duplicate filters were cleared)
            # with nothing left to ever retire it again.
            raise RuntimeError(f"client {self.name} is closed")
        if self._pending is not None:
            raise RuntimeError(
                f"client {self.name} already has request #{self.counter} in flight"
            )
        self.counter += 1
        future = SimFuture(name=f"{self.name}.req#{self.counter}")
        self._pending = {
            "future": future,
            "counter": self.counter,
            "replies": {},
            "start": self.sim.now,
            "kind": kind,
            "operation": operation,
            "retry": None,
        }
        self.run_task(self._send_request)
        return future

    def _send_request(self) -> None:
        pending = self._pending
        if pending is None or pending["future"].done:
            return
        body = RequestBody(
            operation=pending["operation"],
            client=self.name,
            counter=pending["counter"],
            kind=pending["kind"],
        )
        group_names = [node.name for node in self.group_nodes]
        request = ClientRequest(
            body=body,
            signature=sign(self.name, body),
            auth=make_mac_vector(self.name, group_names, body),
            group=self.group_id,
        )
        for replica in self.group_nodes:
            self.send(replica, request)
        pending["retry"] = self.set_timeout(self.retry_ms, self._send_request)

    def _send_weak(self, state) -> None:
        if state["future"].done:
            return
        state["attempts"] += 1
        fallback_after = state.get("fallback_after", 0)
        if fallback_after and state["attempts"] > fallback_after:
            self._upgrade_to_strong_read(state)
            return
        # Fresh attempt: stale replies from older rounds must not be mixed
        # with newer ones (replicas may have applied writes in between).
        state["replies"].clear()
        group_names = [node.name for node in self.group_nodes]
        message = WeakRead(
            operation=state["operation"], client=self.name, nonce=state["nonce"]
        )
        message = attach_auth(
            message, auth=make_mac_vector(self.name, group_names, message)
        )
        for replica in self.group_nodes:
            self.send(replica, message)
        state["retry"] = self.set_timeout(self.retry_ms, self._send_weak, state)

    def _upgrade_to_strong_read(self, state) -> None:
        """The weak read kept stalling: order it instead (Section 3.3)."""
        if self._pending is not None or self.closed:
            # A write is already in flight (one-outstanding-request
            # discipline), or the session closed while the read was still
            # retrying — its retired subchannel cannot order anything, but
            # replicas still answer weak reads, so keep retrying weakly
            # (the state stays registered so weak replies can resolve it).
            state["retry"] = self.set_timeout(self.retry_ms, self._send_weak, state)
            state["attempts"] = 0
            return
        self._weak_pending.pop(state["nonce"], None)
        strong = self.strong_read(state["operation"])
        strong.add_callback(lambda result: state["future"].try_resolve(result))

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------
    def on_message(self, src: Node, message: Any) -> None:
        if isinstance(message, Reply):
            self._on_reply(src, message)
        elif isinstance(message, WeakReadReply):
            self._on_weak_reply(src, message)

    def _on_reply(self, src: Node, message: Reply) -> None:
        pending = self._pending
        if pending is None or message.counter != pending["counter"]:
            return
        if not verify_mac(message.mac, message, src.name, self.name):
            return
        if src.name in pending["replies"]:
            return  # each replica may only contribute one reply
        pending["replies"][src.name] = repr(message.result)
        matching = [
            name
            for name, result in pending["replies"].items()
            if result == repr(message.result)
        ]
        if len(matching) >= self.fe + 1:
            self._complete(pending, message.result)

    def _complete(self, pending, result) -> None:
        if pending["retry"] is not None:
            pending["retry"].cancel()
        latency = self.sim.now - pending["start"]
        self.completed.append((pending["kind"], pending["start"], latency))
        self._pending = None
        pending["future"].resolve(result)

    def _on_weak_reply(self, src: Node, message: WeakReadReply) -> None:
        state = self._weak_pending.get(message.nonce)
        if state is None or state["future"].done:
            return
        if not verify_mac(message.mac, message, src.name, self.name):
            return
        if src.name in state["replies"]:
            return
        state["replies"][src.name] = (repr(message.result), message.result)
        matching = [
            1
            for key, _ in state["replies"].values()
            if key == repr(message.result)
        ]
        if len(matching) >= state.get("threshold", self.fe + 1):
            if state.get("retry") is not None:
                state["retry"].cancel()
            latency = self.sim.now - state["start"]
            self.completed.append((state.get("label", "weak-read"), state["start"], latency))
            del self._weak_pending[message.nonce]
            state["future"].resolve(message.result)
            if self.closed:
                self._maybe_finish_close()


class AdminClient(Node):
    """The privileged client that reconfigures the system (Section 3.6).

    Reconfiguration commands are signed and submitted directly to the
    agreement group, which orders them through consensus before acting.
    """

    def __init__(self, sim, name, site, agreement_nodes, fa=1):
        super().__init__(sim, name, site)
        self.agreement_nodes = list(agreement_nodes)
        self.fa = fa
        self.nonce = 0
        self._registry_waiters: Dict[int, dict] = {}
        #: in-flight MoveRange phases awaiting execution-replica acks,
        #: keyed by (phase, range_start, range_end, new_epoch).
        self._elastic_waiters: Dict[Tuple, dict] = {}

    def add_group(self, group_id: str, member_names) -> None:
        """Submit ``<AddGroup, e, E>``."""
        self.nonce += 1
        body = AddGroup(
            group=group_id,
            members=tuple(member_names),
            admin=self.name,
            nonce=self.nonce,
        )
        message = attach_auth(body, signature=sign(self.name, body))
        self.run_task(self._broadcast, message)

    def remove_group(self, group_id: str) -> None:
        """Submit ``<RemoveGroup, e>``."""
        self.nonce += 1
        body = RemoveGroup(group=group_id, admin=self.name, nonce=self.nonce)
        message = attach_auth(body, signature=sign(self.name, body))
        self.run_task(self._broadcast, message)

    def move_range(
        self,
        *,
        range_start: int,
        range_end: int,
        src_shard: str,
        dst_shard: str,
        new_epoch: int,
        slots: int,
        phase: str,
        threshold: int,
        items: Tuple = (),
        range_map: Tuple = (),
        retry_ms: float = 4000.0,
    ) -> SimFuture:
        """Submit one ``MoveRange`` phase and await ``threshold`` acks.

        The returned future resolves with the replicated ack payload
        once ``threshold`` (fe+1) distinct execution replicas reported
        the same result of applying the phase.  Unlike the fire-and-
        forget group commands this *retries*: each attempt signs a fresh
        nonce, so the retry is a new command to the ordering layer
        (identical bytes would be swallowed by its payload cache) while
        the execution-side book makes re-application a pure ack resend —
        that pairing is what rides out crashed replicas and partitions
        in the middle of a handover.
        """
        key = (phase, range_start, range_end, new_epoch)
        future = SimFuture(name=f"{self.name}.move#{phase}:{range_start}-{range_end}")
        self._elastic_waiters[key] = {
            "future": future,
            "replies": {},
            "threshold": threshold,
        }

        def attempt() -> None:
            if future.done:
                self._elastic_waiters.pop(key, None)
                return
            self.nonce += 1
            body = MoveRange(
                range_start=range_start,
                range_end=range_end,
                src_shard=src_shard,
                dst_shard=dst_shard,
                new_epoch=new_epoch,
                slots=slots,
                phase=phase,
                items=items,
                range_map=range_map,
                admin=self.name,
                nonce=self.nonce,
            )
            message = attach_auth(body, signature=sign(self.name, body))
            self._broadcast(message)
            self.set_timeout(retry_ms, attempt)

        self.run_task(attempt)
        return future

    def _on_elastic_ack(self, src: Node, message: ElasticAck) -> None:
        key = (message.phase, message.range_start, message.range_end, message.new_epoch)
        state = self._elastic_waiters.get(key)
        if state is None or state["future"].done:
            return
        if message.sender != src.name:
            return
        if not verify_mac(message.mac, message, src.name, self.name):
            return
        if src.name in state["replies"]:
            return  # one vote per replica
        state["replies"][src.name] = repr(message.payload)
        matching = [
            1
            for payload in state["replies"].values()
            if payload == repr(message.payload)
        ]
        if len(matching) >= state["threshold"]:
            del self._elastic_waiters[key]
            state["future"].resolve(message.payload)

    def query_registry(self) -> SimFuture:
        """Fetch the execution-replica registry (f_a+1 matching answers)."""
        self.nonce += 1
        future = SimFuture(name=f"{self.name}.registry#{self.nonce}")
        self._registry_waiters[self.nonce] = {"future": future, "replies": {}}
        self.run_task(self._broadcast, RegistryQuery(client=self.name, nonce=self.nonce))
        return future

    def _broadcast(self, message) -> None:
        for node in self.agreement_nodes:
            self.send(node, message)

    def on_message(self, src: Node, message: Any) -> None:
        if isinstance(message, ElasticAck):
            self._on_elastic_ack(src, message)
            return
        if not isinstance(message, RegistryInfo):
            return
        state = self._registry_waiters.get(message.nonce)
        if state is None or state["future"].done:
            return
        from repro.crypto.primitives import verify

        if not verify(message.signature, message, signer=src.name):
            return
        state["replies"][src.name] = message.groups
        matching = [
            1 for groups in state["replies"].values() if groups == message.groups
        ]
        if len(matching) >= self.fa + 1:
            del self._registry_waiters[message.nonce]
            state["future"].resolve(dict(message.groups))
