"""Spider protocol messages (paper Figs. 5 and 15-17)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.crypto.primitives import Digestible, Mac, MacVector, Signature, cached_repr
from repro.net.message import Message

#: Request kinds.
WRITE = "write"
STRONG_READ = "strong-read"


@dataclass(frozen=True)
class RequestBody(Message, Digestible):
    """``<Write, w, c, t_c>`` — the client-signed core of a request.

    ``kind`` distinguishes writes from strongly consistent reads; both
    follow the same path through the system (Section 3.3).
    """

    operation: Tuple
    client: str
    counter: int
    kind: str = WRITE

    def signed_content(self) -> Tuple:
        return ("req", self.operation, self.client, self.counter, self.kind)

    def payload_size(self) -> int:
        return 16 + len(repr(self.operation))


@dataclass(frozen=True)
class ClientRequest(Message, Digestible):
    """A request as transmitted from client to execution group:
    ``mac_{c,E}(sign_c(<Write, w, c, t_c>))``."""

    body: RequestBody
    signature: Optional[Signature]
    auth: Optional[MacVector]
    group: str

    def payload_size(self) -> int:
        return (
            self.body.payload_size()
            + 128
            + (self.auth.size_bytes() if self.auth else 0)
        )


@dataclass(frozen=True)
class RequestWrapper(Message, Digestible):
    """``<Request, r, e>`` — a validated request forwarded via the request
    channel by execution group ``group``."""

    body: RequestBody
    signature: Optional[Signature]
    group: str

    def signed_content(self) -> Tuple:
        return ("wrap", self.body.signed_content(), self.group)

    def payload_size(self) -> int:
        return self.body.payload_size() + 128 + 8


@dataclass(frozen=True)
class Execute(Message, Digestible):
    """``<Execute, r, s>`` — the agreed value at sequence number ``seq``.

    ``placeholder`` replaces the full request for strongly consistent reads
    at execution groups other than the client's (Section 3.3), and for
    consensus no-ops introduced by view changes.

    When request batching is enabled (``SpiderConfig.batch_size > 1``) the
    sequence number covers a whole batch: ``batch`` then carries the items
    in agreed order, each either a :class:`RequestWrapper` or a placeholder
    tuple, and ``request``/``placeholder`` are unused.  One batched Execute
    flows through the commit channel per sequence number, amortising the
    channel's per-message cost over the batch.
    """

    seq: int
    request: Optional[RequestWrapper]
    placeholder: Optional[Tuple] = None  # e.g. ("read", client, counter) / ("noop",)
    batch: Optional[Tuple] = None  # batched items: RequestWrapper | placeholder

    def num_requests(self) -> int:
        """How many agreed items this Execute covers (>= 1)."""
        if self.batch is not None:
            return max(1, len(self.batch))
        return 1

    def __repr__(self) -> str:
        # Reprs feed digests and simulated hashing costs; omit the batch
        # field when unused so batch_size=1 stays byte-identical to the
        # pre-batching wire format.  The request repr is memoised: Execute
        # reprs recur in checkpoint snapshots and channel payload digests.
        base = (
            f"Execute(seq={self.seq!r}, request={cached_repr(self.request)}, "
            f"placeholder={self.placeholder!r}"
        )
        if self.batch is None:
            return base + ")"
        return base + f", batch={self.batch!r})"

    def payload_size(self) -> int:
        if self.batch is not None:
            return 8 + sum(
                item.payload_size() if isinstance(item, Message) else 24
                for item in self.batch
            )
        if self.request is not None:
            return 8 + self.request.payload_size()
        return 8 + 24


@dataclass(frozen=True)
class Reply(Message, Digestible):
    """``<Result, u_c, t_c>`` — one execution replica's reply to a client."""

    result: Any
    counter: int
    sender: str
    group: str
    mac: Optional[Mac] = None

    def signed_content(self) -> Tuple:
        return ("reply", repr(self.result), self.counter, self.sender, self.group)

    def payload_size(self) -> int:
        return 16 + len(repr(self.result)) + 32


@dataclass(frozen=True)
class WeakRead(Message, Digestible):
    """A weakly consistent read, answered directly by an execution group."""

    operation: Tuple
    client: str
    nonce: int
    auth: Optional[MacVector] = None

    def signed_content(self) -> Tuple:
        return ("weak-read", self.operation, self.client, self.nonce)

    def payload_size(self) -> int:
        return 16 + len(repr(self.operation)) + (self.auth.size_bytes() if self.auth else 0)


@dataclass(frozen=True)
class WeakReadReply(Message, Digestible):
    result: Any
    nonce: int
    sender: str
    mac: Optional[Mac] = None

    def signed_content(self) -> Tuple:
        return ("weak-reply", repr(self.result), self.nonce, self.sender)

    def payload_size(self) -> int:
        return 16 + len(repr(self.result)) + 32


@dataclass(frozen=True)
class CloseSession(Message, Digestible):
    """A client retires its request subchannel (session close).

    Signed by the client and MAC'd towards its execution group; each
    execution replica then retires the client's request-channel
    subchannel (and propagates the retirement towards the agreement
    group, which stops the per-client loop).  ``counter`` pins the
    client's final request counter — a close is only honoured for the
    session's live counter frontier, so a replayed old CloseSession
    cannot retire a session that kept running.
    """

    client: str
    counter: int
    signature: Optional[Signature] = None
    auth: Optional[MacVector] = None

    def signed_content(self) -> Tuple:
        return ("close-session", self.client, self.counter)

    def payload_size(self) -> int:
        return 16 + 128 + (self.auth.size_bytes() if self.auth else 0)


@dataclass(frozen=True)
class RetireClient(Message, Digestible):
    """``<RetireClient, c, t>`` — agree on a closed client's retirement.

    Escalated by execution replicas when they process a
    :class:`CloseSession`, and ordered through agreement like any other
    command: once agreed, every agreement replica drops the client's
    ``t`` / ``t+`` counters and reply-cache entries and retires its
    request-channel receiver books — the per-client state that would
    otherwise grow forever under session churn.  Authorisation rides in
    ``close_signature``: the client's own signature over the matching
    ``CloseSession`` content, so *any* node may submit the command but
    none can forge one for a live client.  Deliberately carries no
    submitter field — identical escalations from every execution replica
    have identical ``repr`` and deduplicate in the ordering layer's
    payload cache instead of agreeing the same retirement three times.
    """

    #: never batched: retirement mutates the per-client books that batch
    #: classification itself consults, so it must sit on its own sequence
    #: number (like reconfiguration commands).
    BATCHABLE = False

    client: str
    counter: int
    close_signature: Optional[Signature] = None

    def signed_content(self) -> Tuple:
        return ("retire-client", self.client, self.counter)

    def payload_size(self) -> int:
        return 16 + 128


# ----------------------------------------------------------------------
# Reconfiguration (Section 3.6) and the execution-replica registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AddGroup(Message, Digestible):
    """``<AddGroup, e, E>`` submitted by a privileged admin client."""

    #: never packed into a request batch: the command changes the group set
    #: mid-sequence, which would desynchronise per-group Execute variants.
    BATCHABLE = False

    group: str
    members: Tuple[str, ...]
    admin: str
    nonce: int
    signature: Optional[Signature] = None

    def signed_content(self) -> Tuple:
        return ("add-group", self.group, self.members, self.admin, self.nonce)

    def payload_size(self) -> int:
        return 16 + 32 * len(self.members) + 128


@dataclass(frozen=True)
class RemoveGroup(Message, Digestible):
    """``<RemoveGroup, e>`` submitted by a privileged admin client."""

    BATCHABLE = False  # see AddGroup

    group: str
    admin: str
    nonce: int
    signature: Optional[Signature] = None

    def signed_content(self) -> Tuple:
        return ("remove-group", self.group, self.admin, self.nonce)

    def payload_size(self) -> int:
        return 24 + 128


@dataclass(frozen=True)
class RegistryQuery(Message, Digestible):
    """A client asks the agreement group for the active execution groups."""

    client: str
    nonce: int

    def payload_size(self) -> int:
        return 16


@dataclass(frozen=True)
class RegistryInfo(Message, Digestible):
    """One agreement replica's signed view of the registry."""

    groups: Tuple[Tuple[str, Tuple[str, ...]], ...]
    nonce: int
    sender: str
    signature: Optional[Signature] = None

    def signed_content(self) -> Tuple:
        return ("registry", self.groups, self.nonce, self.sender)

    def payload_size(self) -> int:
        return 16 + sum(8 + 32 * len(members) for _, members in self.groups) + 128
