"""Node-graph wiring for one Spider shard.

:class:`Shard` owns the node graph of one agreement domain: the agreement
group in one region (one replica per availability zone), execution groups
near clients, and the clients themselves.  It supports both static
bootstrap (groups wired before the simulation starts) and dynamic
reconfiguration through the :class:`~repro.core.client.AdminClient`
(Section 3.6).

Deployments are normally *described* rather than hand-wired: the
:mod:`repro.deploy` subsystem turns a declarative
:class:`~repro.deploy.ClusterSpec` into one :class:`Shard` per spec'd
shard via :func:`repro.deploy.build`.  (The historical ``SpiderSystem``
hand-wiring alias served its one-release deprecation grace and is gone;
``Shard`` is the same class under its real name.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.app.kvstore import KVStore
from repro.consensus.pbft.replica import PbftReplica
from repro.core.agreement import AgreementReplica
from repro.core.client import AdminClient, SpiderClient
from repro.core.config import DEFAULT_AGREEMENT_ZONES, SpiderConfig
from repro.core.execution import ExecutionReplica
from repro.errors import ConfigurationError
from repro.net import Network, Site, Topology
from repro.sim import Simulator


@dataclass
class ExecutionGroup:
    """Handle for one deployed execution group."""

    group_id: str
    region: str
    replicas: List[ExecutionReplica] = field(default_factory=list)

    @property
    def member_names(self):
        return tuple(replica.name for replica in self.replicas)


class Shard:
    """Builds and manages one agreement domain of a Spider deployment.

    A shard is one agreement group plus the execution groups it feeds —
    the unit :func:`repro.deploy.build` instantiates per
    :class:`~repro.deploy.ShardSpec`.  ``name_prefix`` keeps node names
    (``ag0`` .. ``ag{n}``, ``admin``) unique when several shards share one
    network; single-shard deployments use the empty prefix, which keeps
    their node graph byte-identical to the historical hand-wired one.

    Example
    -------
    ::

        sim = Simulator(seed=1)
        shard = Shard(sim, agreement_region="virginia")
        shard.add_execution_group("va", "virginia")
        shard.add_execution_group("jp", "tokyo")
        client = shard.make_client("c1", "tokyo", group_id="jp")
        future = client.write(("put", "k", "v"))
        sim.run(until=1000)
        assert future.done
    """

    def __init__(
        self,
        sim: Simulator,
        config: Optional[SpiderConfig] = None,
        network: Optional[Network] = None,
        agreement_region: str = "virginia",
        app_factory: Callable = KVStore,
        agreement_factory: Optional[Callable] = None,
        execute_locally: bool = False,
        agreement_zones: Optional[List[int]] = None,
        agreement_sites: Optional[List[Site]] = None,
        name_prefix: str = "",
    ):
        self.sim = sim
        self.config = config or SpiderConfig()
        self.config.validate()
        self.network = network or Network(sim, Topology())
        self.agreement_region = agreement_region
        self.app_factory = app_factory
        self.execute_locally = execute_locally
        self.name_prefix = name_prefix
        self.groups: Dict[str, ExecutionGroup] = {}
        self.clients: Dict[str, SpiderClient] = {}
        self._group_counter = 0

        if agreement_factory is None:
            pbft_config = self.config.pbft_config()
            agreement_factory = lambda node, peers: PbftReplica(  # noqa: E731
                node, "pbft-ag", peers, pbft_config
            )

        size = self.config.agreement_size
        if agreement_sites is not None:
            if len(agreement_sites) < size:
                raise ConfigurationError("not enough agreement sites provided")
            sites = list(agreement_sites)
        else:
            zones = agreement_zones or list(DEFAULT_AGREEMENT_ZONES)
            if len(zones) < size:
                raise ConfigurationError(
                    "not enough availability zones for agreement group"
                )
            sites = [Site(agreement_region, zone) for zone in zones]
        self.agreement_replicas: List[AgreementReplica] = []
        for index in range(size):
            replica = AgreementReplica(
                sim,
                f"{name_prefix}ag{index}",
                sites[index],
                self.config,
                execute_locally=execute_locally,
                app=app_factory() if execute_locally else None,
            )
            self.network.register(replica)
            self.agreement_replicas.append(replica)
        for replica in self.agreement_replicas:
            replica.resolve_nodes = self._resolve_nodes
            replica.on_membership_change = self._refresh_checkpoint_providers
            replica.setup(self.agreement_replicas, agreement_factory)

        self.admin = AdminClient(
            sim,
            f"{name_prefix}admin",
            Site(agreement_region, 1),
            self.agreement_replicas,
            fa=self.config.fa,
        )
        self.network.register(self.admin)

    # ------------------------------------------------------------------
    # Execution groups
    # ------------------------------------------------------------------
    def create_group_replicas(
        self, group_id: str, region: str, sites: Optional[List[Site]] = None
    ) -> ExecutionGroup:
        """Start the replica processes of a new group (not yet connected).

        ``sites`` overrides the default one-replica-per-zone placement, e.g.
        to spread an f=2 group over a nearby region's fault domains
        (paper's Fig. 11 setting).
        """
        if group_id in self.groups:
            raise ConfigurationError(f"group {group_id!r} already exists")
        size = self.config.execution_size
        if sites is not None and len(sites) < size:
            raise ConfigurationError("not enough sites for the execution group")
        group = ExecutionGroup(group_id=group_id, region=region)
        for index in range(size):
            site = sites[index] if sites is not None else Site(region, index + 1)
            replica = ExecutionReplica(
                self.sim,
                f"{group_id}-e{index}",
                site,
                group_id,
                self.app_factory(),
                self.config,
            )
            self.network.register(replica)
            group.replicas.append(replica)
        for replica in group.replicas:
            replica.setup(group.replicas, self.agreement_replicas)
        self.groups[group_id] = group
        return group

    def add_execution_group(
        self, group_id: str, region: str, sites: Optional[List[Site]] = None
    ) -> ExecutionGroup:
        """Statically bootstrap a group (wired before traffic flows)."""
        group = self.create_group_replicas(group_id, region, sites=sites)
        for replica in self.agreement_replicas:
            replica.connect_group(group_id, group.replicas)
        self._refresh_checkpoint_providers()
        return group

    def add_execution_group_dynamically(self, group_id: str, region: str) -> ExecutionGroup:
        """Runtime addition through the admin client (Section 3.6):
        the group starts first, then ``<AddGroup>`` is agreed on."""
        group = self.create_group_replicas(group_id, region)
        self.admin.add_group(group_id, group.member_names)
        return group

    def remove_execution_group(self, group_id: str) -> None:
        """Runtime removal through the admin client."""
        if group_id not in self.groups:
            raise ConfigurationError(f"no group {group_id!r}")
        self.admin.remove_group(group_id)

    def _resolve_nodes(self, names):
        nodes = []
        for name in names:
            node = self.network.nodes.get(name)
            if node is None:
                return None
            nodes.append(node)
        return nodes

    def _refresh_checkpoint_providers(self) -> None:
        """Execution replicas may fetch checkpoints from any group
        (Section 3.5); keep provider lists and trust anchors current."""
        all_replicas = [r for g in self.groups.values() for r in g.replicas]
        memberships = {
            gid: frozenset(group.member_names) for gid, group in self.groups.items()
        }
        for group in self.groups.values():
            for replica in group.replicas:
                others = [r for r in all_replicas if r.group_id != group.group_id]
                replica.set_checkpoint_providers(list(group.replicas) + others)
                if replica.cp is not None:
                    replica.cp.remote_groups = {
                        gid: members
                        for gid, members in memberships.items()
                        if gid != group.group_id
                    }

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def make_client(
        self,
        name: str,
        region: str,
        group_id: Optional[str] = None,
        zone: int = 1,
    ) -> SpiderClient:
        """Create a client bound to ``group_id`` (default: a group in its
        region, else the first group)."""
        if group_id is None:
            group_id = self._nearest_group(region)
        group = self.groups[group_id]
        client = SpiderClient(
            self.sim,
            name,
            Site(region, zone),
            group_id,
            group.replicas,
            fe=self.config.fe,
            retry_ms=self.config.client_retry_ms,
        )
        self.network.register(client)
        self.clients[name] = client
        return client

    def make_direct_client(self, name: str, region: str, zone: int = 1) -> SpiderClient:
        """Client for the Spider-0E variant: talks to the agreement group
        directly (``execute_locally=True``) and needs ``f_a + 1`` matching
        replies."""
        if not self.execute_locally:
            raise ConfigurationError("direct clients require execute_locally=True")
        client = SpiderClient(
            self.sim,
            name,
            Site(region, zone),
            "ag",
            self.agreement_replicas,
            fe=self.config.fa,
            retry_ms=self.config.client_retry_ms,
        )
        self.network.register(client)
        self.clients[name] = client
        return client

    def _nearest_group(self, region: str) -> str:
        for group_id, group in self.groups.items():
            if group.region == region:
                return group_id
        if not self.groups:
            raise ConfigurationError("no execution groups deployed")
        return next(iter(self.groups))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def group_of(self, group_id: str) -> ExecutionGroup:
        return self.groups[group_id]

    @property
    def all_nodes(self):
        nodes = list(self.agreement_replicas)
        for group in self.groups.values():
            nodes.extend(group.replicas)
        return nodes
