"""Deployment configuration for Spider."""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.consensus.pbft.config import PbftConfig
from repro.errors import ConfigurationError

#: Default availability-zone order for agreement groups (paper: the V-1 /
#: V-2 / V-4 / V-6 leader placement, continued for larger groups).  The
#: single source of truth — spec validation and shard wiring must agree
#: on it or a validated spec could build a different placement.
DEFAULT_AGREEMENT_ZONES = (1, 2, 4, 6, 3, 5, 7, 8, 9, 10)


@dataclass
class SpiderConfig:
    """All tunables of a Spider deployment (paper Sections 3.2-3.5).

    Parameters
    ----------
    fa / fe:
        Faults tolerated by the agreement group (size ``3 fa + 1``) and by
        each execution group (size ``2 fe + 1``).
    irmc_kind:
        ``"rc"`` or ``"sc"`` — which IRMC implementation connects groups.
    request_capacity:
        Per-client request-subchannel window (paper uses 2: the last
        forwarded request plus the next).
    ka / ke:
        Agreement / execution checkpoint intervals.  The commit channel's
        capacity must be at least ``ke`` for liveness (Section 3.4); it is
        sized ``max(ke, commit_capacity)``.
    ag_window:
        ``AG-WIN`` — how far agreement may run ahead of its last stable
        checkpoint (must be >= ``ka``).
    z:
        Global flow control: how many trailing execution groups the
        agreement group may leave behind per sequence number (Section 3.5).
    batch_size / batch_timeout_ms:
        End-to-end request batching: the consensus leader amortises one
        agreement round (and one commit-channel ``Execute`` per execution
        group) over up to ``batch_size`` requests, cutting an incomplete
        batch after ``batch_timeout_ms`` so low load keeps low latency.
        The default ``batch_size=1`` reproduces the unbatched behaviour
        bit-for-bit.
    admins:
        Principals allowed to reconfigure the system (Section 3.6).
    """

    fa: int = 1
    fe: int = 1
    irmc_kind: str = "rc"
    request_capacity: int = 2
    commit_capacity: int = 64
    ka: int = 16
    ke: int = 16
    ag_window: int = 64
    z: int = 0
    batch_size: int = 1
    batch_timeout_ms: float = 10.0
    client_retry_ms: float = 4000.0
    fetch_retry_ms: float = 50.0
    pbft: PbftConfig = field(default_factory=lambda: PbftConfig(view_timeout_ms=1000.0))
    admins: tuple = ("admin",)

    def validate(self) -> None:
        if self.fa < 0 or self.fe < 1:
            # fa = 0 degenerates the agreement group to a single sequencer
            # (useful with non-BFT agreement black-boxes in tests/demos).
            raise ConfigurationError("fa must be >= 0 and fe >= 1")
        if self.irmc_kind not in ("rc", "sc"):
            raise ConfigurationError(f"unknown IRMC kind {self.irmc_kind!r}")
        if self.ag_window < self.ka:
            raise ConfigurationError("ag_window must be >= ka (Fig. 17 L. 4)")
        if self.commit_channel_capacity < self.ke:
            raise ConfigurationError("commit capacity must be >= ke (Section 3.4)")
        if self.z < 0:
            raise ConfigurationError("z must be >= 0")
        if self.request_capacity < 1:
            raise ConfigurationError("request_capacity must be >= 1")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.batch_timeout_ms < 0:
            raise ConfigurationError("batch_timeout_ms must be >= 0")
        defaults = PbftConfig()
        nested_mismatch = (
            self.pbft.batch_size != defaults.batch_size
            and self.pbft.batch_size != self.batch_size
        ) or (
            self.pbft.batch_timeout_ms != defaults.batch_timeout_ms
            and self.pbft.batch_timeout_ms != self.batch_timeout_ms
        )
        if nested_mismatch:
            # pbft_config() derives the agreement group's batching from
            # SpiderConfig; differing values on the nested PbftConfig would
            # be silently ignored, so reject them loudly instead.
            raise ConfigurationError(
                "set batch_size/batch_timeout_ms on SpiderConfig, "
                "not on the nested PbftConfig"
            )

    @property
    def agreement_size(self) -> int:
        return 3 * self.fa + 1

    @property
    def execution_size(self) -> int:
        return 2 * self.fe + 1

    @property
    def commit_channel_capacity(self) -> int:
        return max(self.ke, self.commit_capacity)

    def pbft_config(self) -> PbftConfig:
        config = PbftConfig(
            f=self.fa,
            view_timeout_ms=self.pbft.view_timeout_ms,
            window=max(self.pbft.window, self.ag_window * 4),
            weights=self.pbft.weights,
            fetch_delay_ms=self.pbft.fetch_delay_ms,
            recovery_retry_ms=self.pbft.recovery_retry_ms,
            batch_size=self.batch_size,
            batch_timeout_ms=self.batch_timeout_ms,
        )
        return config
