"""Declarative deployment API (specs, builder, sessions).

Describe a deployment as pure data, build it with one call, talk to it
through sharded sessions::

    from repro.deploy import ClusterSpec, GroupSpec, ShardSpec, build

    spec = ClusterSpec(shards=(
        ShardSpec("s0", groups=(GroupSpec("va", "virginia"),
                                GroupSpec("jp", "tokyo"))),
        ShardSpec("s1", groups=(GroupSpec("va2", "virginia"),
                                GroupSpec("jp2", "tokyo"))),
    ))
    cluster = build(sim, spec)
    session = cluster.session("alice", "tokyo")
    session.write("cart:42", ["milk"])        # routed to cart:42's shard
    session.read("cart:42")                   # weak (local) read
    session.strong_read("cart:42")            # ordered read
    session.close()                           # retires request subchannels

Shards are independent agreement domains over disjoint key ranges — the
deterministic :class:`KeyPartitioner` maps every key to its owner — so a
cluster scales writes with the shard count.  The baselines use the same
idiom via :class:`BftSpec` / :class:`HftSpec`.
"""

from repro.deploy.cluster import Cluster, KeyPartitioner, build
from repro.deploy.middleware import (
    CLOSED,
    OVERLOAD,
    RATE_LIMIT,
    Middleware,
    MiddlewareChain,
    Rejected,
    Served,
    register_middleware,
)
from repro.deploy.session import Consistency, Session
from repro.deploy.spec import (
    BftSpec,
    ClusterSpec,
    GroupSpec,
    HftSpec,
    MiddlewareSpec,
    ShardSpec,
)

__all__ = [
    "CLOSED",
    "OVERLOAD",
    "RATE_LIMIT",
    "BftSpec",
    "Cluster",
    "ClusterSpec",
    "Consistency",
    "GroupSpec",
    "HftSpec",
    "KeyPartitioner",
    "Middleware",
    "MiddlewareChain",
    "MiddlewareSpec",
    "Rejected",
    "Served",
    "Session",
    "ShardSpec",
    "build",
    "register_middleware",
]
