"""Composable traffic-shaping middleware on the session path.

The paper positions Spider as a replication *middleware*; this module is
the client-side half of that story: a chain of interception hooks wrapped
around :class:`~repro.deploy.session.Session` operations, declared as
pure data on the :class:`~repro.deploy.spec.ClusterSpec` (see
``MiddlewareSpec``) and assembled by the cluster builder.

Protocol
--------
A middleware implements two hooks::

    on_op(ctx, op)          -> op | Rejected | Served
    on_reply(ctx, op, result)

``on_op`` runs before the operation is queued, in declared order
(first entry outermost).  Returning the op passes it down the chain;
returning :class:`Rejected` sheds it (the caller's future resolves with
the marker, nothing reaches the wire); returning :class:`Served` answers
it locally (read cache hits).  ``on_reply`` runs on completion in
reverse order, for every middleware whose ``on_op`` already ran — so an
outer metrics middleware observes sheds performed by inner middlewares.

Operations shed by ``Session.close`` (queued behind a shard backlog at
close time) complete through the same ``on_reply`` path with
``Rejected(CLOSED)``, so the accounting identity *offered = completed +
served + shed* holds exactly.

Middlewares are shared: the cluster caches instances by the
``name:options`` fingerprint, so two shards (or the cluster and a shard)
declaring the same entry share one instance — per-shard and per-session
state lives *inside* the instance, keyed by the :class:`OpContext`, and
is dropped by ``on_session_close``.  An empty chain takes none of these
code paths: the session's fast path is untouched and runs byte-identical
to a spec without middleware.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "CLOSED",
    "OVERLOAD",
    "RATE_LIMIT",
    "Middleware",
    "MiddlewareChain",
    "Op",
    "OpContext",
    "Rejected",
    "Served",
    "middleware_fingerprint",
    "register_middleware",
    "resolve_middleware",
    "validate_middleware",
]

#: Rejection reasons.
OVERLOAD = "overload"
RATE_LIMIT = "rate-limit"
CLOSED = "closed"


class Rejected:
    """Terminal result of a shed operation (the future resolves with this)."""

    __slots__ = ("reason", "by")

    def __init__(self, reason: str, by: str = ""):
        self.reason = reason
        self.by = by

    def __repr__(self) -> str:
        return f"Rejected(reason={self.reason!r}, by={self.by!r})"


class Served:
    """An operation answered locally by a middleware (read cache hit)."""

    __slots__ = ("value", "by")

    def __init__(self, value: Any, by: str = ""):
        self.value = value
        self.by = by

    def __repr__(self) -> str:
        return f"Served(value={self.value!r}, by={self.by!r})"


class Op:
    """One session operation travelling through the chain.

    ``scratch`` is per-op middleware state (e.g. the admission middleware
    marks ops it counted so its decrement on reply is exact even when the
    op is later shed by ``Session.close``).
    """

    __slots__ = ("kind", "key", "operation", "shard_id", "issued_at", "scratch")

    def __init__(self, kind: str, key: Any, operation: Tuple, shard_id: str, issued_at: float):
        self.kind = kind
        self.key = key
        self.operation = operation
        self.shard_id = shard_id
        self.issued_at = issued_at
        self.scratch: Dict[str, Any] = {}

    @property
    def ordered(self) -> bool:
        return self.kind != "weak-read"

    def __repr__(self) -> str:
        return f"Op({self.kind!r}, {self.key!r}, shard={self.shard_id!r})"


class OpContext:
    """The (session, shard) scope a chain invocation runs in."""

    __slots__ = ("session", "shard_id")

    def __init__(self, session, shard_id: str):
        self.session = session
        self.shard_id = shard_id

    @property
    def session_name(self) -> str:
        return self.session.name

    @property
    def now(self) -> float:
        return self.session.cluster.sim.now

    @property
    def closed(self) -> bool:
        return self.session.closed


class Middleware:
    """Base class: default hooks pass everything through unchanged."""

    #: registry key; subclasses must override.
    name = "middleware"

    @classmethod
    def validate_options(cls, options: Dict[str, Any]) -> None:
        """Reject malformed options at spec-validation time (hook)."""
        if options:
            raise ConfigurationError(
                f"middleware {cls.name!r} takes no options, got {sorted(options)}"
            )

    def on_op(self, ctx: OpContext, op: Op):
        return op

    def on_reply(self, ctx: OpContext, op: Op, result: Any) -> None:
        pass

    def on_session_close(self, ctx: OpContext) -> None:
        """Drop per-session state for ``ctx.session_name`` (hook)."""

    def snapshot(self) -> Dict[str, Any]:
        """Observable counters/gauges (metrics surface; hook)."""
        return {}


class MiddlewareChain:
    """An ordered list of middleware instances bound to one shard."""

    __slots__ = ("middlewares",)

    def __init__(self, middlewares: List[Middleware]):
        self.middlewares = list(middlewares)

    def admit(self, ctx: OpContext, op: Op):
        """Run ``on_op`` down the chain.

        Returns the (possibly replaced) op, or the Rejected/Served marker
        of the middleware that short-circuited — in which case the
        middlewares *above* it already see the outcome via ``on_reply``
        (the shedding middleware accounts its own decision internally).
        """
        for index, middleware in enumerate(self.middlewares):
            outcome = middleware.on_op(ctx, op)
            if isinstance(outcome, (Rejected, Served)):
                for prior in reversed(self.middlewares[:index]):
                    prior.on_reply(ctx, op, outcome)
                return outcome
            op = outcome
        return op

    def complete(self, ctx: OpContext, op: Op, result: Any) -> None:
        """Run ``on_reply`` back up the chain (innermost first)."""
        for middleware in reversed(self.middlewares):
            middleware.on_reply(ctx, op, result)

    def close_session(self, ctx: OpContext) -> None:
        for middleware in reversed(self.middlewares):
            middleware.on_session_close(ctx)

    def find(self, name: str) -> Optional[Middleware]:
        for middleware in self.middlewares:
            if middleware.name == name:
                return middleware
        return None


# ----------------------------------------------------------------------
# Registry (spec entries name middlewares; instances are cached by
# fingerprint so identical declarations share one instance)
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, type] = {}


def register_middleware(cls: type) -> type:
    """Class decorator: make ``cls`` addressable from specs by its name."""
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"duplicate middleware name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def resolve_middleware(name: str) -> type:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown middleware {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def validate_middleware(name: str, options: Dict[str, Any]) -> None:
    """Spec-validation entry point: name known, options well-formed."""
    resolve_middleware(name).validate_options(dict(options))


def middleware_fingerprint(name: str, options: Dict[str, Any]) -> str:
    """Canonical ``name:options`` identity for instance caching."""
    return f"{name}:{json.dumps(dict(options), sort_keys=True, default=repr)}"


def build_middleware(name: str, options: Dict[str, Any]) -> Middleware:
    return resolve_middleware(name)(**dict(options))


def _require_positive(name: str, options: Dict[str, Any], key: str, kind=(int, float)):
    value = options[key]
    if not isinstance(value, kind) or isinstance(value, bool) or value <= 0:
        raise ConfigurationError(
            f"middleware {name!r}: option {key!r} must be a positive number, "
            f"got {value!r}"
        )


# ----------------------------------------------------------------------
# Production middlewares
# ----------------------------------------------------------------------
@register_middleware
class AdmissionControl(Middleware):
    """Bounded per-shard queue depth with deterministic load shedding.

    Ordered operations (writes, strong reads) count against a shard-wide
    depth — queued plus in flight, across every session sharing this
    instance.  An op arriving at a full shard resolves immediately with
    ``Rejected(OVERLOAD)`` instead of joining an unbounded backlog: under
    a flash crowd the admitted ops keep a bounded queueing delay (depth ×
    service time) while the overflow is shed and accounted.  Weak reads
    bypass the gate (they never queue).
    """

    name = "admission"

    def __init__(self, depth: int = 32):
        self.depth = depth
        self._inflight: Dict[str, int] = {}
        self.shed: Dict[str, int] = {}

    @classmethod
    def validate_options(cls, options: Dict[str, Any]) -> None:
        unknown = set(options) - {"depth"}
        if unknown:
            raise ConfigurationError(
                f"middleware {cls.name!r}: unknown options {sorted(unknown)}"
            )
        if "depth" in options:
            _require_positive(cls.name, options, "depth", kind=int)

    def on_op(self, ctx: OpContext, op: Op):
        if not op.ordered:
            return op
        shard = op.shard_id
        if self._inflight.get(shard, 0) >= self.depth:
            self.shed[shard] = self.shed.get(shard, 0) + 1
            return Rejected(OVERLOAD, by=self.name)
        self._inflight[shard] = self._inflight.get(shard, 0) + 1
        op.scratch["admission"] = shard
        return op

    def on_reply(self, ctx: OpContext, op: Op, result: Any) -> None:
        shard = op.scratch.pop("admission", None)
        if shard is not None:
            self._inflight[shard] -= 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            "depth_limit": self.depth,
            "inflight": dict(self._inflight),
            "shed": dict(self.shed),
        }


@register_middleware
class RateLimit(Middleware):
    """Token-bucket per-session rate limiting on simulated time.

    Every operation (weak reads included) spends one token; the bucket
    refills at ``rate`` tokens per simulated second up to ``burst``.  An
    empty bucket sheds with ``Rejected(RATE_LIMIT)`` — callers are
    expected to back off, and the deterministic refill makes the shed
    pattern reproducible run-to-run.
    """

    name = "rate-limit"

    def __init__(self, rate: float = 100.0, burst: Optional[float] = None):
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else self.rate
        #: session name -> [tokens, last refill time]
        self._buckets: Dict[str, List[float]] = {}
        self.shed_count = 0

    @classmethod
    def validate_options(cls, options: Dict[str, Any]) -> None:
        unknown = set(options) - {"rate", "burst"}
        if unknown:
            raise ConfigurationError(
                f"middleware {cls.name!r}: unknown options {sorted(unknown)}"
            )
        for key in ("rate", "burst"):
            if key in options:
                _require_positive(cls.name, options, key)

    def on_op(self, ctx: OpContext, op: Op):
        bucket = self._buckets.get(ctx.session_name)
        if bucket is None:
            bucket = self._buckets[ctx.session_name] = [self.burst, ctx.now]
        tokens, last = bucket
        tokens = min(self.burst, tokens + self.rate * (ctx.now - last) / 1000.0)
        if tokens < 1.0:
            bucket[0], bucket[1] = tokens, ctx.now
            self.shed_count += 1
            return Rejected(RATE_LIMIT, by=self.name)
        bucket[0], bucket[1] = tokens - 1.0, ctx.now
        return op

    def on_session_close(self, ctx: OpContext) -> None:
        self._buckets.pop(ctx.session_name, None)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "burst": self.burst,
            "sessions": len(self._buckets),
            "shed": self.shed_count,
        }


@register_middleware
class ReadCache(Middleware):
    """Client-side read caching with invalidation-on-write leases.

    A completed weak read installs a lease of ``lease_ms`` simulated
    milliseconds; while it holds, further weak reads of the key are
    served locally (``Served``) without touching the wire.  The session's
    own writes invalidate the key *write-through*: the lease is dropped
    both when the write is submitted and when it completes (closing the
    race with a weak read that was already in flight).  Writes by *other*
    sessions are not observed — the lease only bounds the staleness the
    session added on top of weak-read semantics, which are stale-prone by
    contract (paper Section 3.3).  Strong-read results also install a
    lease (they are at least as fresh as any weak read).
    """

    name = "read-cache"

    def __init__(self, lease_ms: float = 500.0):
        self.lease_ms = float(lease_ms)
        #: session name -> key -> (reply, lease expiry)
        self._caches: Dict[str, Dict[Any, Tuple[Any, float]]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @classmethod
    def validate_options(cls, options: Dict[str, Any]) -> None:
        unknown = set(options) - {"lease_ms"}
        if unknown:
            raise ConfigurationError(
                f"middleware {cls.name!r}: unknown options {sorted(unknown)}"
            )
        if "lease_ms" in options:
            _require_positive(cls.name, options, "lease_ms")

    def _cache(self, ctx: OpContext) -> Dict[Any, Tuple[Any, float]]:
        return self._caches.setdefault(ctx.session_name, {})

    def on_op(self, ctx: OpContext, op: Op):
        if op.kind == "weak-read":
            entry = self._caches.get(ctx.session_name, {}).get(op.key)
            if entry is not None and entry[1] >= ctx.now:
                self.hits += 1
                return Served(entry[0], by=self.name)
            self.misses += 1
        elif op.kind == "write":
            if self._caches.get(ctx.session_name, {}).pop(op.key, None) is not None:
                self.invalidations += 1
        return op

    def on_reply(self, ctx: OpContext, op: Op, result: Any) -> None:
        if isinstance(result, (Rejected, Served)) or ctx.closed:
            return
        if op.kind == "write":
            # Write-through: sweep a lease a concurrent read installed.
            if self._caches.get(ctx.session_name, {}).pop(op.key, None) is not None:
                self.invalidations += 1
        else:
            self._cache(ctx)[op.key] = (result, ctx.now + self.lease_ms)

    def on_session_close(self, ctx: OpContext) -> None:
        self._caches.pop(ctx.session_name, None)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "lease_ms": self.lease_ms,
            "sessions": len(self._caches),
            "entries": sum(len(c) for c in self._caches.values()),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }


@register_middleware
class SloMetrics(Middleware):
    """SLO metrics emitter: latency histograms, depth gauge, shed/hit counts.

    Declare it *first* so it wraps the whole chain and observes inner
    sheds and cache hits.  Per-kind latency is recorded both as raw
    samples (exact percentiles for benchmarks) and as a power-of-two
    histogram (the production-shaped export).  The accounting identity
    ``offered == completed + served + shed`` holds exactly — ops shed at
    admission, by rate limiting, or by ``Session.close`` all surface
    here as ``Rejected`` results.
    """

    name = "slo-metrics"

    def __init__(self):
        self.offered: Dict[str, int] = {}
        self.completed: Dict[str, int] = {}
        self.served: Dict[str, int] = {}
        self.shed: Dict[str, int] = {}  # keyed by rejection reason
        self.latencies: Dict[str, List[float]] = {}
        self.histogram: Dict[str, Dict[int, int]] = {}
        self._inflight: Dict[str, int] = {}
        self.max_inflight: Dict[str, int] = {}

    def on_op(self, ctx: OpContext, op: Op):
        self.offered[op.kind] = self.offered.get(op.kind, 0) + 1
        op.scratch["slo"] = ctx.now
        shard = op.shard_id
        depth = self._inflight.get(shard, 0) + 1
        self._inflight[shard] = depth
        if depth > self.max_inflight.get(shard, 0):
            self.max_inflight[shard] = depth
        return op

    def on_reply(self, ctx: OpContext, op: Op, result: Any) -> None:
        started = op.scratch.pop("slo", None)
        if started is None:
            return  # duplicate completion; never happens on the session path
        self._inflight[op.shard_id] -= 1
        if isinstance(result, Rejected):
            self.shed[result.reason] = self.shed.get(result.reason, 0) + 1
            return
        if isinstance(result, Served):
            self.served[op.kind] = self.served.get(op.kind, 0) + 1
            return
        self.completed[op.kind] = self.completed.get(op.kind, 0) + 1
        latency = ctx.now - started
        self.latencies.setdefault(op.kind, []).append(latency)
        bucket = max(0, int(latency).bit_length())
        per_kind = self.histogram.setdefault(op.kind, {})
        per_kind[bucket] = per_kind.get(bucket, 0) + 1

    @staticmethod
    def percentile(values: List[float], q: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "offered": dict(self.offered),
            "completed": dict(self.completed),
            "served": dict(self.served),
            "shed": dict(self.shed),
            "max_inflight": dict(self.max_inflight),
            "histogram_ms_pow2": {k: dict(v) for k, v in self.histogram.items()},
            "p50_ms": {k: self.percentile(v, 0.50) for k, v in self.latencies.items()},
            "p99_ms": {k: self.percentile(v, 0.99) for k, v in self.latencies.items()},
        }
