"""The sharded, session-based client surface.

A :class:`Session` is the key-value face of a multi-shard cluster: every
operation names a *key*, the cluster's deterministic
:class:`~repro.deploy.cluster.KeyPartitioner` maps the key to its owning
shard, and the session multiplexes one underlying
:class:`~repro.core.client.SpiderClient` per shard it touches (created
lazily, named ``{session}@{shard_id}``).

Semantics:

* **Writes** and **strong reads** are ordered operations; the underlying
  protocol client allows one in flight at a time, so the session queues
  them *per shard* — per-key FIFO follows (a key always maps to the same
  shard), while operations on keys owned by different shards proceed in
  parallel.  That independence is the scale-out axis: N shards give a
  session up to N concurrently ordered operations.
* **Weak reads** (:attr:`Consistency.WEAK`, the :meth:`Session.read`
  default) go straight to the owning shard's nearest execution group and
  may be served concurrently with ordered traffic, exactly like
  :meth:`SpiderClient.weak_read`.
* **Middleware** — when the spec declares a chain
  (:class:`~repro.deploy.spec.MiddlewareSpec`), every operation passes
  through it before touching a queue and again on completion
  (:mod:`repro.deploy.middleware`): admission control may shed it with
  ``Rejected(OVERLOAD)``, rate limiting with ``Rejected(RATE_LIMIT)``,
  the read cache may answer it locally.  A spec without middleware skips
  these paths entirely and runs byte-identical to the pre-middleware
  session.
* :meth:`Session.close` sheds ordered operations still *queued* behind a
  shard backlog — their futures resolve with ``Rejected(CLOSED)``
  immediately rather than executing after the caller said stop (or, in
  the pre-fix race, hanging forever) — lets in-flight operations finish,
  and then retires the session's per-client request-channel subchannels
  (Fig. 14's channels are per-client: without retirement every replica's
  window books grow one entry per client *forever*).  A closed session
  rejects new operations; session names are single-use (the channel
  layer's bounded retirement tombstones remember old subchannels).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.deploy.middleware import CLOSED, Op, OpContext, Rejected, Served
from repro.sim.futures import SimFuture

__all__ = ["Consistency", "Session"]


class Consistency(enum.Enum):
    """Read consistency levels (paper Section 3.3).

    ``WEAK`` — answered by the local execution group, may be stale;
    ``STRONG`` — totally ordered with all writes through agreement.
    """

    WEAK = "weak"
    STRONG = "strong"


class Session:
    """A named client session over a sharded cluster (see module docs).

    Obtained from :meth:`repro.deploy.Cluster.session`; not constructed
    directly.
    """

    def __init__(self, cluster, name: str, region: str, zone: int = 1):
        self.cluster = cluster
        self.name = name
        self.region = region
        self.zone = zone
        self.closed = False
        #: completed operations: (kind, key, issued_at, latency_ms)
        self.completed: list = []
        self._clients: Dict[str, Any] = {}
        #: queued ordered ops: (kind, operation, future, middleware Op|None)
        self._queues: Dict[str, Deque[Tuple[str, Tuple, SimFuture, Any]]] = {}
        self._busy: Dict[str, bool] = {}
        self._released: set = set()
        #: per-shard middleware contexts, only populated when the spec
        #: declares a chain (the empty-chain fast path allocates nothing).
        self._contexts: Dict[str, OpContext] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def write(self, key: str, value: Any) -> SimFuture:
        """Linearizable ``put`` on the shard owning ``key``."""
        return self._submit_ordered("write", key, ("put", key, value))

    def read(self, key: str, consistency: Consistency = Consistency.WEAK) -> SimFuture:
        """``get`` at the requested consistency level."""
        if consistency is Consistency.STRONG:
            return self._submit_ordered("strong-read", key, ("get", key))
        self._check_open()
        shard_id = self.cluster.partitioner.owner(key)
        chain = self._chain(shard_id)
        if chain is not None:
            ctx = self._context(shard_id)
            op = Op("weak-read", key, ("get", key), shard_id, self.cluster.sim.now)
            outcome = chain.admit(ctx, op)
            if isinstance(outcome, Rejected):
                future = SimFuture(name=f"{self.name}.weak-read:{key}")
                future.resolve(outcome)
                return future
            if isinstance(outcome, Served):
                future = SimFuture(name=f"{self.name}.weak-read:{key}")
                self._track(future, "weak-read", key)
                future.resolve(outcome.value)
                return future
            op = outcome
            future = self._client(shard_id).weak_read(("get", key))
            future.add_callback(lambda result: chain.complete(ctx, op, result))
            self._track(future, "weak-read", key)
            return future
        future = self._client(shard_id).weak_read(("get", key))
        self._track(future, "weak-read", key)
        return future

    def strong_read(self, key: str) -> SimFuture:
        """``get`` totally ordered with all writes (Section 3.3)."""
        return self.read(key, Consistency.STRONG)

    def close(self) -> None:
        """Retire the session.

        Ordered operations still *queued* (not in flight) are shed now:
        their futures resolve with ``Rejected(CLOSED)`` — executing them
        after the caller said stop would be wrong, and leaving them
        queued would hang their futures forever, since ``_pump`` switches
        to retirement once the session is closed.  The per-shard
        in-flight operation (if any) completes normally, after which
        ``_pump`` retires that shard's request subchannel so the channel
        endpoints drop this client's window books.  When every underlying
        client finishes its close, the session releases the client
        objects (network registration, builder dictionaries) and itself;
        the name is released once the agreement group agrees the
        retirement (see ``Cluster._note_client_retired``)."""
        if self.closed:
            return
        self.closed = True
        for shard_id, queue in self._queues.items():
            chain = self._chain(shard_id)
            while queue:
                _kind, _operation, future, op = queue.popleft()
                rejected = Rejected(CLOSED, by="session")
                if op is not None and chain is not None:
                    chain.complete(self._context(shard_id), op, rejected)
                future.try_resolve(rejected)
        for shard_id in list(self._contexts):
            chain = self._chain(shard_id)
            if chain is not None:
                chain.close_session(self._contexts[shard_id])
        if not self._clients:
            self.cluster._release_session(self)
            # No protocol client was ever created, so nothing downstream
            # remembers the name — release it immediately.
            self.cluster._forget_session_name(self.name)
            return
        self.cluster._expect_retirements(self.name, list(self._clients))
        for shard_id in list(self._clients):
            # _pump owns the finish-then-retire rule: it retires idle
            # shards now and busy shards at their in-flight completion.
            self._pump(shard_id)

    @property
    def pending_ops(self) -> int:
        """Ordered operations queued or in flight across all shards."""
        return sum(len(q) for q in self._queues.values()) + sum(
            1 for busy in self._busy.values() if busy
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError(f"session {self.name!r} is closed")

    def _client(self, shard_id: str):
        client = self._clients.get(shard_id)
        if client is None:
            client = self.cluster.make_client(
                f"{self.name}@{shard_id}",
                self.region,
                zone=self.zone,
                shard_id=shard_id,
            )
            client.on_closed = (
                lambda closed, shard_id=shard_id: self._release_client(shard_id, closed)
            )
            self._clients[shard_id] = client
            self._queues[shard_id] = deque()
            self._busy[shard_id] = False
        return client

    def _release_client(self, shard_id: str, client) -> None:
        """The client's close fully completed: drop every reference that
        would otherwise grow one entry per churned session forever."""
        shard = self.cluster.shard(shard_id)
        shard.clients.pop(client.name, None)
        self.cluster.network.unregister(client)
        self._released.add(shard_id)
        if self._released >= set(self._clients):
            self._clients.clear()
            self._queues.clear()
            self._busy.clear()
            self._released.clear()
            self.cluster._release_session(self)

    def _chain(self, shard_id: str):
        if not self.cluster.has_middleware:
            return None
        return self.cluster.middleware_chain(shard_id)

    def _context(self, shard_id: str) -> OpContext:
        ctx = self._contexts.get(shard_id)
        if ctx is None:
            ctx = self._contexts[shard_id] = OpContext(self, shard_id)
        return ctx

    def _submit_ordered(self, kind: str, key: str, operation: Tuple) -> SimFuture:
        self._check_open()
        shard_id = self.cluster.partitioner.owner(key)
        chain = self._chain(shard_id)
        op: Optional[Op] = None
        if chain is not None:
            op = Op(kind, key, operation, shard_id, self.cluster.sim.now)
            outcome = chain.admit(self._context(shard_id), op)
            if isinstance(outcome, Rejected):
                # Shed before queuing: the op never touches the wire and
                # does not count as a completed operation.
                future = SimFuture(name=f"{self.name}.{kind}:{key}")
                future.resolve(outcome)
                return future
            if isinstance(outcome, Served):
                future = SimFuture(name=f"{self.name}.{kind}:{key}")
                self._track(future, kind, key)
                future.resolve(outcome.value)
                return future
            op = outcome
        self._client(shard_id)  # ensure queue exists
        future = SimFuture(name=f"{self.name}.{kind}:{key}")
        self._track(future, kind, key)
        self._queues[shard_id].append((kind, operation, future, op))
        self._pump(shard_id)
        return future

    def _pump(self, shard_id: str) -> None:
        if self._busy[shard_id]:
            return
        queue = self._queues[shard_id]
        if not queue:
            if self.closed:
                self._clients[shard_id].close_session()
            return
        kind, operation, outer, op = queue.popleft()
        self._busy[shard_id] = True
        client = self._clients[shard_id]
        if kind == "write":
            inner = client.write(operation)
        else:
            inner = client.strong_read(operation)
        inner.add_callback(lambda result: self._on_done(shard_id, outer, result, op))

    def _on_done(self, shard_id: str, outer: SimFuture, result: Any, op=None) -> None:
        self._busy[shard_id] = False
        if op is not None:
            chain = self._chain(shard_id)
            if chain is not None:
                chain.complete(self._context(shard_id), op, result)
        outer.try_resolve(result)
        self._pump(shard_id)

    def _track(self, future: SimFuture, kind: str, key: str) -> None:
        issued_at = self.cluster.sim.now
        future.add_callback(
            lambda _result: self.completed.append(
                (kind, key, issued_at, self.cluster.sim.now - issued_at)
            )
        )
