"""The sharded, session-based client surface.

A :class:`Session` is the key-value face of a multi-shard cluster: every
operation names a *key*, the cluster's deterministic
:class:`~repro.deploy.cluster.KeyPartitioner` maps the key to its owning
shard, and the session multiplexes one underlying
:class:`~repro.core.client.SpiderClient` per shard it touches (created
lazily, named ``{session}@{shard_id}``).

Semantics:

* **Writes** and **strong reads** are ordered operations; the underlying
  protocol client allows one in flight at a time, so the session queues
  them *per shard* — per-key FIFO follows (a key always maps to the same
  shard), while operations on keys owned by different shards proceed in
  parallel.  That independence is the scale-out axis: N shards give a
  session up to N concurrently ordered operations.
* **Weak reads** (:attr:`Consistency.WEAK`, the :meth:`Session.read`
  default) go straight to the owning shard's nearest execution group and
  may be served concurrently with ordered traffic, exactly like
  :meth:`SpiderClient.weak_read`.
* **Middleware** — when the spec declares a chain
  (:class:`~repro.deploy.spec.MiddlewareSpec`), every operation passes
  through it before touching a queue and again on completion
  (:mod:`repro.deploy.middleware`): admission control may shed it with
  ``Rejected(OVERLOAD)``, rate limiting with ``Rejected(RATE_LIMIT)``,
  the read cache may answer it locally.  A spec without middleware skips
  these paths entirely and runs byte-identical to the pre-middleware
  session.
* :meth:`Session.close` sheds ordered operations still *queued* behind a
  shard backlog — their futures resolve with ``Rejected(CLOSED)``
  immediately rather than executing after the caller said stop (or, in
  the pre-fix race, hanging forever) — lets in-flight operations finish,
  and then retires the session's per-client request-channel subchannels
  (Fig. 14's channels are per-client: without retirement every replica's
  window books grow one entry per client *forever*).  A closed session
  rejects new operations; session names are single-use (the channel
  layer's bounded retirement tombstones remember old subchannels).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.deploy.middleware import CLOSED, Op, OpContext, Rejected, Served
from repro.elastic.messages import Migrating, WrongShard
from repro.elastic.rangemap import RangeMap
from repro.sim.futures import SimFuture

__all__ = ["Consistency", "Session"]


class Consistency(enum.Enum):
    """Read consistency levels (paper Section 3.3).

    ``WEAK`` — answered by the local execution group, may be stale;
    ``STRONG`` — totally ordered with all writes through agreement.
    """

    WEAK = "weak"
    STRONG = "strong"


class Session:
    """A named client session over a sharded cluster (see module docs).

    Obtained from :meth:`repro.deploy.Cluster.session`; not constructed
    directly.
    """

    def __init__(self, cluster, name: str, region: str, zone: int = 1):
        self.cluster = cluster
        self.name = name
        self.region = region
        self.zone = zone
        self.closed = False
        #: completed operations: (kind, key, issued_at, latency_ms)
        self.completed: list = []
        self._clients: Dict[str, Any] = {}
        #: queued ordered ops: (kind, operation, future, middleware Op|None)
        self._queues: Dict[str, Deque[Tuple[str, Tuple, SimFuture, Any]]] = {}
        self._busy: Dict[str, bool] = {}
        self._released: set = set()
        #: per-shard middleware contexts, only populated when the spec
        #: declares a chain (the empty-chain fast path allocates nothing).
        self._contexts: Dict[str, OpContext] = {}
        # --- elastic-keyspace routing state (repro.elastic) -----------
        #: unresolved ordered ops per key, and the shard each key's
        #: unresolved ops are pinned to.  Per-key FIFO across a range
        #: handover follows from the *follow-the-previous-op* rule: while
        #: any op for a key is unresolved, new ops for it route to the
        #: same shard the first one went to (redirects there happen in
        #: submission order), and only once the count drains to zero does
        #: the key route by the current table again.  Single-epoch
        #: deployments see identical routing — the pinned shard always
        #: equals the table's owner.
        self._key_pending: Dict[str, int] = {}
        self._key_target: Dict[str, str] = {}
        #: key of the op currently on the wire per shard (None when idle)
        #: — a flip cannot re-route a key whose redirect stream is still
        #: in motion at the old owner.
        self._inflight: Dict[str, Optional[str]] = {}
        #: ordered ops rejected with ``Migrating`` mid-handover, parked
        #: until the routing epoch reaches the handover's: released (in
        #: arrival order) by ``Cluster._adopt_map`` at the commit flip.
        self._parked: Deque[Tuple[int, str, str, Tuple, SimFuture, Any]] = deque()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def write(self, key: str, value: Any) -> SimFuture:
        """Linearizable ``put`` on the shard owning ``key``."""
        return self._submit_ordered("write", key, ("put", key, value))

    def read(self, key: str, consistency: Consistency = Consistency.WEAK) -> SimFuture:
        """``get`` at the requested consistency level."""
        if consistency is Consistency.STRONG:
            return self._submit_ordered("strong-read", key, ("get", key))
        self._check_open()
        shard_id = self.cluster.partitioner.owner(key)
        chain = self._chain(shard_id)
        if chain is not None:
            ctx = self._context(shard_id)
            op = Op("weak-read", key, ("get", key), shard_id, self.cluster.sim.now)
            outcome = chain.admit(ctx, op)
            if isinstance(outcome, Rejected):
                future = SimFuture(name=f"{self.name}.weak-read:{key}")
                future.resolve(outcome)
                return future
            if isinstance(outcome, Served):
                future = SimFuture(name=f"{self.name}.weak-read:{key}")
                self._track(future, "weak-read", key)
                future.resolve(outcome.value)
                return future
            op = outcome
            future = self._client(shard_id).weak_read(("get", key))
            future.add_callback(lambda result: chain.complete(ctx, op, result))
            self._track(future, "weak-read", key)
            return future
        future = self._client(shard_id).weak_read(("get", key))
        self._track(future, "weak-read", key)
        return future

    def strong_read(self, key: str) -> SimFuture:
        """``get`` totally ordered with all writes (Section 3.3)."""
        return self.read(key, Consistency.STRONG)

    def close(self) -> None:
        """Retire the session.

        Ordered operations still *queued* (not in flight) are shed now:
        their futures resolve with ``Rejected(CLOSED)`` — executing them
        after the caller said stop would be wrong, and leaving them
        queued would hang their futures forever, since ``_pump`` switches
        to retirement once the session is closed.  The per-shard
        in-flight operation (if any) completes normally, after which
        ``_pump`` retires that shard's request subchannel so the channel
        endpoints drop this client's window books.  When every underlying
        client finishes its close, the session releases the client
        objects (network registration, builder dictionaries) and itself;
        the name is released once the agreement group agrees the
        retirement (see ``Cluster._note_client_retired``)."""
        if self.closed:
            return
        self.closed = True
        for queue in self._queues.values():
            while queue:
                _kind, _operation, future, op = queue.popleft()
                rejected = Rejected(CLOSED, by="session")
                if op is not None:
                    # Complete against the shard the chain was begun on
                    # (``op.shard_id``) — after a redirect an op can sit
                    # in another shard's queue, and the begin/complete
                    # pair must hit the same per-shard context.
                    chain = self._chain(op.shard_id)
                    if chain is not None:
                        chain.complete(self._context(op.shard_id), op, rejected)
                future.try_resolve(rejected)
        while self._parked:
            # Ops parked behind an in-flight handover are queued ops too:
            # shed them the same way rather than hanging their futures.
            _epoch, _kind, _key, _operation, future, op = self._parked.popleft()
            rejected = Rejected(CLOSED, by="session")
            if op is not None:
                chain = self._chain(op.shard_id)
                if chain is not None:
                    chain.complete(self._context(op.shard_id), op, rejected)
            future.try_resolve(rejected)
        for shard_id in list(self._contexts):
            chain = self._chain(shard_id)
            if chain is not None:
                chain.close_session(self._contexts[shard_id])
        if not self._clients:
            self.cluster._release_session(self)
            # No protocol client was ever created, so nothing downstream
            # remembers the name — release it immediately.
            self.cluster._forget_session_name(self.name)
            return
        self.cluster._expect_retirements(self.name, list(self._clients))
        for shard_id in list(self._clients):
            # _pump owns the finish-then-retire rule: it retires idle
            # shards now and busy shards at their in-flight completion.
            self._pump(shard_id)

    @property
    def pending_ops(self) -> int:
        """Ordered operations queued, parked, or in flight."""
        return (
            sum(len(q) for q in self._queues.values())
            + len(self._parked)
            + sum(1 for busy in self._busy.values() if busy)
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError(f"session {self.name!r} is closed")

    def _client(self, shard_id: str):
        client = self._clients.get(shard_id)
        if client is None:
            client = self.cluster.make_client(
                f"{self.name}@{shard_id}",
                self.region,
                zone=self.zone,
                shard_id=shard_id,
            )
            client.on_closed = (
                lambda closed, shard_id=shard_id: self._release_client(shard_id, closed)
            )
            self._clients[shard_id] = client
            self._queues[shard_id] = deque()
            self._busy[shard_id] = False
        return client

    def _release_client(self, shard_id: str, client) -> None:
        """The client's close fully completed: drop every reference that
        would otherwise grow one entry per churned session forever."""
        shard = self.cluster.shard(shard_id)
        shard.clients.pop(client.name, None)
        self.cluster.network.unregister(client)
        self._released.add(shard_id)
        if self._released >= set(self._clients):
            self._clients.clear()
            self._queues.clear()
            self._busy.clear()
            self._released.clear()
            self.cluster._release_session(self)

    def _chain(self, shard_id: str):
        if not self.cluster.has_middleware:
            return None
        return self.cluster.middleware_chain(shard_id)

    def _context(self, shard_id: str) -> OpContext:
        ctx = self._contexts.get(shard_id)
        if ctx is None:
            ctx = self._contexts[shard_id] = OpContext(self, shard_id)
        return ctx

    def _submit_ordered(self, kind: str, key: str, operation: Tuple) -> SimFuture:
        self._check_open()
        # Follow-the-previous-op: a key with unresolved ordered ops keeps
        # routing to their shard even if the table flipped underneath —
        # the old owner redirects them in order, preserving per-key FIFO
        # across a range handover (see the field docs above).
        shard_id = self._key_target.get(key) or self.cluster.partitioner.owner(key)
        chain = self._chain(shard_id)
        op: Optional[Op] = None
        if chain is not None:
            op = Op(kind, key, operation, shard_id, self.cluster.sim.now)
            outcome = chain.admit(self._context(shard_id), op)
            if isinstance(outcome, Rejected):
                # Shed before queuing: the op never touches the wire and
                # does not count as a completed operation.
                future = SimFuture(name=f"{self.name}.{kind}:{key}")
                future.resolve(outcome)
                return future
            if isinstance(outcome, Served):
                future = SimFuture(name=f"{self.name}.{kind}:{key}")
                self._track(future, kind, key)
                future.resolve(outcome.value)
                return future
            op = outcome
        self._client(shard_id)  # ensure queue exists
        future = SimFuture(name=f"{self.name}.{kind}:{key}")
        self._track(future, kind, key)
        self._note_issued(key, shard_id, future)
        self._queues[shard_id].append((kind, operation, future, op))
        self._pump(shard_id)
        return future

    def _pump(self, shard_id: str) -> None:
        if self._busy[shard_id]:
            return
        queue = self._queues[shard_id]
        if not queue:
            if self.closed:
                self._clients[shard_id].close_session()
            return
        kind, operation, outer, op = queue.popleft()
        self._busy[shard_id] = True
        self._inflight[shard_id] = operation[1]
        client = self._clients[shard_id]
        if kind == "write":
            inner = client.write(operation)
        else:
            inner = client.strong_read(operation)
        inner.add_callback(
            lambda result: self._on_done(shard_id, outer, result, op, kind, operation)
        )

    def _on_done(
        self, shard_id: str, outer: SimFuture, result: Any,
        op=None, kind=None, operation=None,
    ) -> None:
        if (
            isinstance(result, (Migrating, WrongShard))
            and operation is not None
            and not self.closed
        ):
            # The old owner ordered the op but shed it mid-handover: the
            # op never executed there, so resubmitting it (to the new
            # owner, possibly after parking for the epoch bump) keeps
            # exactly-once intact.  The shard stays busy and the key
            # stays in ``_inflight`` until the redirect is enqueued: a
            # ``WrongShard`` reply may be this session's first sight of
            # the new table, and the ``_adopt_map`` inside ``_redirect``
            # then runs ``_rebalance_queues`` — which must keep treating
            # this key as frozen, or it would splice the key's *younger*
            # queued ops to the new owner ahead of this older op.
            self._redirect(outer, result, op, kind, operation)
            self._busy[shard_id] = False
            self._inflight[shard_id] = None
            self._pump(shard_id)
            return
        self._busy[shard_id] = False
        self._inflight[shard_id] = None
        if isinstance(result, (Migrating, WrongShard)) and operation is not None:
            # A closed session cannot open new shard clients — shed like
            # a queued op at close instead.
            result = Rejected(CLOSED, by="session")
        if op is not None:
            # Complete against the shard the chain was *begun* on: after
            # a redirect the op finishes at a different shard, and the
            # begin/complete pair must hit the same per-shard context.
            chain = self._chain(op.shard_id)
            if chain is not None:
                chain.complete(self._context(op.shard_id), op, result)
        outer.try_resolve(result)
        self._pump(shard_id)

    # ------------------------------------------------------------------
    # Elastic-keyspace internals (redirects, parking, key pinning)
    # ------------------------------------------------------------------
    def _redirect(self, outer: SimFuture, result, op, kind: str, operation: Tuple) -> None:
        key = operation[1]
        partitioner = self.cluster.partitioner
        if isinstance(result, WrongShard):
            # The redirect carries the authoritative table: adopt it (a
            # no-op if we already have a newer one — that also releases
            # any ops parked behind this very epoch, keeping them ahead
            # of the op being redirected now), then chase the new owner.
            self.cluster._adopt_map(RangeMap.from_wire(result.range_map))
            self._enqueue_redirect(partitioner.owner(key), kind, key, operation, outer, op)
        elif partitioner.epoch >= result.new_epoch:
            # Migrating, but the flip already happened here: resubmit.
            self._enqueue_redirect(partitioner.owner(key), kind, key, operation, outer, op)
        else:
            # Migrating and the handover is still in flight: park until
            # Cluster._adopt_map flips the table at commit.
            self._parked.append((result.new_epoch, kind, key, operation, outer, op))

    def _enqueue_redirect(
        self, shard_id: str, kind: str, key: str, operation: Tuple,
        future: SimFuture, op,
    ) -> None:
        # Deliberately does NOT touch _key_target: earlier ops for the
        # key may still be queued at the old owner, and new submissions
        # must keep lining up behind them there (they get redirected in
        # order; jumping ahead to the new owner would reorder the key).
        self._client(shard_id)
        self._queues[shard_id].append((kind, operation, future, op))
        self._pump(shard_id)

    def _release_parked(self) -> None:
        """Resubmit parked ops whose epoch arrived (in arrival order)."""
        if not self._parked:
            return
        epoch = self.cluster.partitioner.epoch
        ready: list = []
        keep: Deque = deque()
        for entry in self._parked:
            (ready if entry[0] <= epoch else keep).append(entry)
        self._parked = keep
        for _epoch, kind, key, operation, future, op in ready:
            self._enqueue_redirect(
                self.cluster.partitioner.owner(key), kind, key, operation, future, op
            )

    def _rebalance_queues(self) -> None:
        """Re-route queued ops stranded behind a table flip.

        Without this, a key with a standing backlog never unpins: its
        pending count never drains to zero, so every subsequent op pays
        an ordering round at the old owner just to be shed and chased to
        the new one — the new shard only ever sees second-hand traffic.
        After a flip, any key whose unresolved ops are *all* plain queue
        entries in one mis-routed queue (none on the wire, none parked —
        those redirect streams are still in motion and must stay ahead)
        can move en bloc: the entries splice onto the owning shard's
        queue in submission order, and the pin flips so new submissions
        line up behind them there.  Per-key FIFO holds by construction —
        every earlier unresolved op of the key either moves inside the
        block or already sits in the destination queue.
        """
        partitioner = self.cluster.partitioner
        frozen = {key for key in self._inflight.values() if key is not None}
        frozen |= {entry[2] for entry in self._parked}
        homes: Dict[str, set] = {}
        for shard_id, queue in self._queues.items():
            for entry in queue:
                homes.setdefault(entry[1][1], set()).add(shard_id)
        for key in sorted(homes):
            if key in frozen or len(homes[key]) != 1:
                continue
            (current,) = homes[key]
            owner = partitioner.owner(key)
            if owner == current:
                continue
            queue = self._queues[current]
            moving = [entry for entry in queue if entry[1][1] == key]
            self._queues[current] = deque(
                entry for entry in queue if entry[1][1] != key
            )
            self._client(owner)
            self._queues[owner].extend(moving)
            self._key_target[key] = owner
            self._pump(owner)

    def _note_issued(self, key: str, shard_id: str, future: SimFuture) -> None:
        self._key_pending[key] = self._key_pending.get(key, 0) + 1
        self._key_target.setdefault(key, shard_id)
        future.add_callback(lambda _result: self._note_settled(key))

    def _note_settled(self, key: str) -> None:
        remaining = self._key_pending.get(key, 0) - 1
        if remaining > 0:
            self._key_pending[key] = remaining
        else:
            # Last unresolved op for the key: unpin — the next submission
            # routes by the then-current table.
            self._key_pending.pop(key, None)
            self._key_target.pop(key, None)

    def _track(self, future: SimFuture, kind: str, key: str) -> None:
        issued_at = self.cluster.sim.now
        future.add_callback(
            lambda _result: self.completed.append(
                (kind, key, issued_at, self.cluster.sim.now - issued_at)
            )
        )
