"""Declarative deployment specifications.

A deployment is *described* as pure data and materialised by
:func:`repro.deploy.build`:

* :class:`ClusterSpec` — one or more :class:`ShardSpec`\\ s (each an
  agreement group plus its execution groups, i.e. one complete "paper
  deployment"), the shared :class:`~repro.core.config.SpiderConfig`, the
  application factory and the consensus backend.  Multiple shards are the
  repo's first scale-out axis: independent agreement groups own disjoint
  key ranges (see :class:`~repro.deploy.cluster.KeyPartitioner`).
* :class:`BftSpec` / :class:`HftSpec` — the comparison baselines, in the
  same describe-then-build idiom.

Specs validate *before* any node is constructed, so configuration
mistakes (duplicate ids, under-provisioned regions) surface as
:class:`~repro.errors.ConfigurationError` with the offending id in the
message rather than as a half-built system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Tuple

from repro.app.kvstore import KVStore
from repro.core.config import DEFAULT_AGREEMENT_ZONES, SpiderConfig
from repro.deploy.middleware import middleware_fingerprint, validate_middleware
from repro.errors import ConfigurationError
from repro.net import Site

__all__ = [
    "APP_FACTORIES",
    "GroupSpec",
    "MiddlewareSpec",
    "ShardSpec",
    "ClusterSpec",
    "BftSpec",
    "HftSpec",
]

#: application factories a declarative (suite-file) spec may name.
APP_FACTORIES: dict = {"kvstore": KVStore}


def _app_factory_from(value) -> Callable:
    if callable(value):
        return value
    try:
        return APP_FACTORIES[value]
    except KeyError:
        raise ConfigurationError(
            f"unknown app factory {value!r}; known: {sorted(APP_FACTORIES)}"
        ) from None


@dataclass(frozen=True)
class MiddlewareSpec:
    """One session-middleware entry, as pure data.

    ``options`` is a sorted tuple of ``(key, value)`` pairs so the spec
    stays hashable; build entries with :meth:`of`.  Entries declared on
    the :class:`ClusterSpec` apply to every shard, entries on a
    :class:`ShardSpec` are appended after them (cluster entries
    outermost).  Identical ``name:options`` fingerprints share one
    middleware instance cluster-wide (see
    :mod:`repro.deploy.middleware`).
    """

    name: str
    options: Tuple[Tuple[str, object], ...] = ()

    @staticmethod
    def of(name: str, **options) -> "MiddlewareSpec":
        return MiddlewareSpec(name, tuple(sorted(options.items())))

    @staticmethod
    def from_dict(data: Mapping) -> "MiddlewareSpec":
        """``{"name": ..., "options": {...}}`` (options optional)."""
        if "name" not in data:
            raise ConfigurationError(
                f"middleware entry needs a 'name' key, got {sorted(data)}"
            )
        unknown = set(data) - {"name", "options"}
        if unknown:
            raise ConfigurationError(
                f"middleware entry {data['name']!r}: unknown keys {sorted(unknown)}"
            )
        return MiddlewareSpec.of(data["name"], **dict(data.get("options", {})))

    def options_dict(self) -> dict:
        return dict(self.options)

    def fingerprint(self) -> str:
        return middleware_fingerprint(self.name, self.options_dict())

    def validate(self) -> None:
        if not self.name:
            raise ConfigurationError("middleware name must be non-empty")
        validate_middleware(self.name, self.options_dict())


@dataclass(frozen=True)
class GroupSpec:
    """One execution group: ``2 fe + 1`` replicas hosting the app.

    ``sites`` overrides the default one-replica-per-zone placement in
    ``region`` (e.g. to spread an f=2 group over a nearby region's fault
    domains, the paper's Fig. 11 setting).
    """

    group_id: str
    region: str
    sites: Optional[Tuple[Site, ...]] = None

    @staticmethod
    def from_dict(data: Mapping) -> "GroupSpec":
        unknown = set(data) - {"group_id", "region"}
        if unknown:
            raise ConfigurationError(
                f"group entry: unknown keys {sorted(unknown)} "
                "(declarative groups take 'group_id' and 'region')"
            )
        return GroupSpec(data.get("group_id", ""), data.get("region", ""))


@dataclass(frozen=True)
class ShardSpec:
    """One agreement domain: an agreement group plus its execution groups.

    Node names inside a shard follow the historical scheme (``ag0``...,
    ``{group_id}-e0``..., ``admin``); multi-shard clusters prefix the
    agreement/admin names with ``{shard_id}-`` to keep them unique, while
    a single-shard cluster keeps the bare names — and therefore a node
    graph byte-identical to the hand-wired :class:`~repro.core.Shard`.
    """

    shard_id: str
    groups: Tuple[GroupSpec, ...] = ()
    agreement_region: str = "virginia"
    agreement_zones: Optional[Tuple[int, ...]] = None
    agreement_sites: Optional[Tuple[Site, ...]] = None
    #: shard-local session middleware, appended after the cluster chain.
    middleware: Tuple[MiddlewareSpec, ...] = ()

    @staticmethod
    def from_dict(data: Mapping) -> "ShardSpec":
        known = {"shard_id", "groups", "agreement_region", "agreement_zones", "middleware"}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"shard entry {data.get('shard_id')!r}: unknown keys "
                f"{sorted(unknown)} (known: {sorted(known)})"
            )
        zones = data.get("agreement_zones")
        return ShardSpec(
            shard_id=data.get("shard_id", ""),
            groups=tuple(GroupSpec.from_dict(g) for g in data.get("groups", ())),
            agreement_region=data.get("agreement_region", "virginia"),
            agreement_zones=tuple(zones) if zones is not None else None,
            middleware=tuple(
                MiddlewareSpec.from_dict(m) for m in data.get("middleware", ())
            ),
        )


@dataclass(frozen=True)
class ClusterSpec:
    """A complete deployment: shards + config + app + consensus backend.

    ``consensus`` selects the agreement black-box (``"pbft"`` or
    ``"raft"``); ``agreement_factory`` is the escape hatch for custom
    backends (a callable ``(node, peers) -> Agreement``, overriding
    ``consensus``).  ``execute_locally`` builds the paper's Spider-0E
    variant (application hosted on the agreement replicas, no IRMCs) and
    is restricted to single-shard specs.
    """

    shards: Tuple[ShardSpec, ...]
    config: SpiderConfig = field(default_factory=SpiderConfig)
    app_factory: Callable = KVStore
    consensus: str = "pbft"
    agreement_factory: Optional[Callable] = None
    execute_locally: bool = False
    #: session middleware chain applied to every shard (declared order =
    #: outermost first; see :mod:`repro.deploy.middleware`).
    middleware: Tuple[MiddlewareSpec, ...] = ()

    # ------------------------------------------------------------------
    @staticmethod
    def single(
        regions: Tuple[str, ...] = ("virginia",),
        agreement_region: str = "virginia",
        agreement_zones: Optional[Tuple[int, ...]] = None,
        config: Optional[SpiderConfig] = None,
        app_factory: Callable = KVStore,
        shard_id: str = "s0",
        **kwargs,
    ) -> "ClusterSpec":
        """The common single-shard shape: one group per listed region,
        each group named after its region (the historical layout)."""
        shard = ShardSpec(
            shard_id=shard_id,
            agreement_region=agreement_region,
            agreement_zones=agreement_zones,
            groups=tuple(GroupSpec(region, region) for region in regions),
        )
        return ClusterSpec(
            shards=(shard,),
            config=config or SpiderConfig(),
            app_factory=app_factory,
            **kwargs,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def from_dict(data: Mapping) -> "ClusterSpec":
        """Build a :class:`ClusterSpec` from suite-file data.

        Two shapes are accepted:

        * ``{"regions": [...], ...}`` — the :meth:`single` convenience
          (one shard, one group per region);
        * ``{"shards": [{...}, ...], ...}`` — the general form.

        ``config`` is a mapping of :class:`~repro.core.config.SpiderConfig`
        field overrides; ``app_factory`` a registry name from
        :data:`APP_FACTORIES`; ``middleware`` a list of
        ``{"name", "options"}`` entries.  All scalar data — no callables
        needed — so a suite file fully describes the topology.
        """
        known = {
            "regions", "shards", "agreement_region", "agreement_zones",
            "config", "app_factory", "consensus", "execute_locally",
            "middleware", "shard_id",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"topology: unknown keys {sorted(unknown)} (known: {sorted(known)})"
            )
        if "regions" in data and "shards" in data:
            raise ConfigurationError(
                "topology: give either 'regions' (single-shard shorthand) "
                "or 'shards', not both"
            )
        config_data = data.get("config", {})
        if isinstance(config_data, SpiderConfig):
            config = config_data
        else:
            try:
                config = SpiderConfig(**dict(config_data))
            except TypeError as error:
                raise ConfigurationError(f"topology config: {error}") from None
        middleware = tuple(
            MiddlewareSpec.from_dict(m) for m in data.get("middleware", ())
        )
        common = dict(
            config=config,
            app_factory=_app_factory_from(data.get("app_factory", "kvstore")),
        )
        if "regions" in data:
            zones = data.get("agreement_zones")
            return ClusterSpec.single(
                regions=tuple(data["regions"]),
                agreement_region=data.get("agreement_region", "virginia"),
                agreement_zones=tuple(zones) if zones is not None else None,
                shard_id=data.get("shard_id", "s0"),
                consensus=data.get("consensus", "pbft"),
                execute_locally=bool(data.get("execute_locally", False)),
                middleware=middleware,
                **common,
            )
        return ClusterSpec(
            shards=tuple(ShardSpec.from_dict(s) for s in data.get("shards", ())),
            consensus=data.get("consensus", "pbft"),
            execute_locally=bool(data.get("execute_locally", False)),
            middleware=middleware,
            **common,
        )

    def fingerprint(self) -> str:
        """Canonical structural fingerprint (the scenario cache identity)."""
        from repro.scenarios.fingerprint import structural_fingerprint

        return structural_fingerprint(self)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if not self.shards:
            raise ConfigurationError("ClusterSpec needs at least one shard")
        self.config.validate()
        if self.consensus not in ("pbft", "raft") and self.agreement_factory is None:
            raise ConfigurationError(
                f"unknown consensus backend {self.consensus!r} "
                "(expected 'pbft' or 'raft', or pass agreement_factory)"
            )
        if self.execute_locally and len(self.shards) > 1:
            raise ConfigurationError(
                "execute_locally (Spider-0E) supports single-shard specs only"
            )
        for entry in self.middleware:
            entry.validate()
        seen_shards = set()
        seen_groups = set()
        for shard in self.shards:
            if not shard.shard_id:
                raise ConfigurationError("shard_id must be non-empty")
            if shard.shard_id in seen_shards:
                raise ConfigurationError(f"duplicate shard id {shard.shard_id!r}")
            seen_shards.add(shard.shard_id)
            if not shard.agreement_region:
                raise ConfigurationError(
                    f"shard {shard.shard_id!r}: agreement region must be non-empty"
                )
            for entry in shard.middleware:
                entry.validate()
            size = self.config.agreement_size
            if shard.agreement_sites is not None:
                if len(shard.agreement_sites) < size:
                    raise ConfigurationError(
                        f"shard {shard.shard_id!r}: {len(shard.agreement_sites)} "
                        f"agreement sites for a group of {size}"
                    )
            else:
                zones = shard.agreement_zones or DEFAULT_AGREEMENT_ZONES
                if len(zones) < size:
                    raise ConfigurationError(
                        f"shard {shard.shard_id!r}: {len(zones)} availability "
                        f"zones for an agreement group of {size}"
                    )
            if not shard.groups and not self.execute_locally:
                raise ConfigurationError(
                    f"shard {shard.shard_id!r} has no execution groups "
                    "(only execute_locally specs may omit them)"
                )
            for group in shard.groups:
                if not group.group_id:
                    raise ConfigurationError(
                        f"shard {shard.shard_id!r}: group_id must be non-empty"
                    )
                if group.group_id in seen_groups:
                    # Group ids are cluster-global: replicas register as
                    # ``{group_id}-e{i}`` in one shared network namespace.
                    raise ConfigurationError(
                        f"duplicate group id {group.group_id!r}"
                    )
                seen_groups.add(group.group_id)
                if not group.region:
                    raise ConfigurationError(
                        f"group {group.group_id!r}: region must be non-empty"
                    )
                if group.sites is not None and len(group.sites) < self.config.execution_size:
                    raise ConfigurationError(
                        f"group {group.group_id!r}: region {group.region!r} "
                        f"declared with {len(group.sites)} sites, needs "
                        f"{self.config.execution_size}"
                    )

    def shard_ids(self) -> Tuple[str, ...]:
        return tuple(shard.shard_id for shard in self.shards)


# ----------------------------------------------------------------------
# Baseline specs (the paper's comparison systems, Fig. 1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BftSpec:
    """Flat geo-distributed PBFT (paper Fig. 1a); ``weights`` turns it
    into BFT-WV (weighted voting a la WHEAT).  ``leader`` defaults to the
    first region."""

    regions: Tuple[str, ...]
    leader: Optional[str] = None
    f: int = 1
    weights: Optional[Tuple[Tuple[str, float], ...]] = None
    view_timeout_ms: float = 4000.0
    checkpoint_interval: int = 16
    app_factory: Callable = KVStore

    def ordered_regions(self) -> Tuple[str, ...]:
        leader = self.leader or self.regions[0]
        return (leader,) + tuple(r for r in self.regions if r != leader)

    def validate(self) -> None:
        if not self.regions:
            raise ConfigurationError("BftSpec needs at least one region")
        if len(set(self.regions)) != len(self.regions):
            raise ConfigurationError("BftSpec regions must be unique")
        if self.leader is not None and self.leader not in self.regions:
            raise ConfigurationError(f"leader {self.leader!r} not in regions")
        if len(self.regions) < 3 * self.f + 1:
            raise ConfigurationError(
                f"BFT with f={self.f} needs >= {3 * self.f + 1} regions"
            )


@dataclass(frozen=True)
class HftSpec:
    """Steward-style hierarchical replication (paper Fig. 1b): one
    ``3f + 1`` cluster per region; ``leader`` names the leader site."""

    regions: Tuple[str, ...]
    leader: Optional[str] = None
    f: int = 1
    site_layout: Optional[Tuple[Tuple[str, Tuple[Site, ...]], ...]] = None
    app_factory: Callable = KVStore

    def ordered_regions(self) -> Tuple[str, ...]:
        leader = self.leader or self.regions[0]
        return (leader,) + tuple(r for r in self.regions if r != leader)

    def validate(self) -> None:
        if len(self.regions) < 2:
            raise ConfigurationError("HFT needs at least two sites")
        if len(set(self.regions)) != len(self.regions):
            raise ConfigurationError("HftSpec regions must be unique")
        if self.leader is not None and self.leader not in self.regions:
            raise ConfigurationError(f"leader {self.leader!r} not in regions")
