"""Spec-to-system builder and the multi-shard cluster runtime.

:func:`build` is the single constructor for every architecture in the
repo: it turns a :class:`~repro.deploy.spec.ClusterSpec` into a
:class:`Cluster` (one :class:`~repro.core.Shard` per spec'd shard on a
shared network), and the baseline specs into their respective systems.

A single-shard spec builds the exact node graph the historical
hand-wired :class:`~repro.core.SpiderSystem` would have built — same
node names, same construction order, same event stream — so a 1-shard
run is byte-identical to the pre-spec path (regression-tested in
``tests/test_deploy.py``).
"""

from __future__ import annotations

import zlib
from dataclasses import replace
from typing import Any, Dict, Optional

from repro.core.system import Shard
from repro.deploy.middleware import MiddlewareChain, build_middleware
from repro.deploy.session import Session
from repro.deploy.spec import BftSpec, ClusterSpec, HftSpec, ShardSpec
from repro.errors import ConfigurationError
from repro.net import Network, Topology

__all__ = ["KeyPartitioner", "Cluster", "build"]


class KeyPartitioner:
    """Deterministic key -> shard mapping shared by all sessions.

    ``crc32(str(key))`` modulo the shard count, over the spec's shard
    order — stable across platforms and interpreter runs (unlike builtin
    ``hash``), so a key's owner is a pure function of the spec.
    """

    def __init__(self, shard_ids):
        self.shard_ids = tuple(shard_ids)
        if not self.shard_ids:
            raise ConfigurationError("partitioner needs at least one shard")

    def owner(self, key: Any) -> str:
        """The shard id owning ``key``."""
        index = zlib.crc32(str(key).encode("utf-8", errors="replace"))
        return self.shard_ids[index % len(self.shard_ids)]

    def keys_for(self, shard_id: str, count: int, prefix: str = "key-"):
        """``count`` generated keys owned by ``shard_id`` (workload helper)."""
        if shard_id not in self.shard_ids:
            # owner() can never return an unknown id — without this the
            # search below would spin forever instead of failing fast.
            raise ConfigurationError(
                f"no shard {shard_id!r}; known: {sorted(self.shard_ids)}"
            )
        found, index = [], 0
        while len(found) < count:
            key = f"{prefix}{index}"
            if self.owner(key) == shard_id:
                found.append(key)
            index += 1
        return found


class Cluster:
    """A built multi-shard deployment: shards + partitioner + sessions."""

    #: how many retired session names the reuse filter remembers (bounded,
    #: matching the channel layer's bounded retirement tombstones).
    RETIRED_NAME_CAP = 256

    def __init__(self, sim, network, spec: ClusterSpec, shards: Dict[str, Shard]):
        self.sim = sim
        self.network = network
        self.spec = spec
        self.shards: Dict[str, Shard] = dict(shards)
        self.partitioner = KeyPartitioner(self.shards.keys())
        #: live sessions only — fully closed ones are released.  A closed
        #: session's name stays in ``_session_names`` until the agreement
        #: group agrees its clients' retirement (RetireClient), then moves
        #: into the bounded ``_retired_names`` ring: reuse of a remembered
        #: name is rejected (the channel layer's bounded tombstones still
        #: remember the old subchannels), but the books no longer grow one
        #: entry per churned session forever.
        self.sessions: Dict[str, Session] = {}
        self._session_names: set = set()
        self._retired_names: Dict[str, None] = {}
        #: client name -> session name, for sessions whose close is
        #: awaiting agreed retirement; plus a per-session countdown.
        self._pending_retirement: Dict[str, str] = {}
        self._retire_remaining: Dict[str, int] = {}
        for shard in self.shards.values():
            for replica in getattr(shard, "agreement_replicas", []):
                replica.on_client_retired = self._note_client_retired
        #: middleware instances cached by ``name:options`` fingerprint,
        #: and the per-shard assembled chains (None = empty chain).
        self._middleware_instances: Dict[str, Any] = {}
        self._chains: Dict[str, Optional[MiddlewareChain]] = {}
        self.has_middleware = bool(spec.middleware) or any(
            shard_spec.middleware for shard_spec in spec.shards
        )

    # ------------------------------------------------------------------
    # Shard access
    # ------------------------------------------------------------------
    def shard(self, shard_id: str) -> Shard:
        try:
            return self.shards[shard_id]
        except KeyError:
            raise ConfigurationError(
                f"no shard {shard_id!r}; known: {sorted(self.shards)}"
            ) from None

    @property
    def system(self) -> Shard:
        """The sole shard of a single-shard cluster (compat convenience)."""
        if len(self.shards) != 1:
            raise ConfigurationError(
                "Cluster.system is defined for single-shard clusters only; "
                "use cluster.shard(shard_id)"
            )
        return next(iter(self.shards.values()))

    def shard_for_key(self, key: Any) -> Shard:
        return self.shards[self.partitioner.owner(key)]

    @property
    def all_nodes(self):
        nodes = []
        for shard in self.shards.values():
            nodes.extend(shard.all_nodes)
        return nodes

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def session(self, name: str, region: str, zone: int = 1) -> Session:
        """Open a :class:`~repro.deploy.session.Session` — the sharded
        key-value surface (``write`` / ``read`` / ``strong_read`` routed
        by the key partitioner).  Names are single-use: close a session
        rather than re-opening one under the same name."""
        if name in self._session_names or name in self._retired_names:
            raise ConfigurationError(f"session {name!r} already exists")
        self._session_names.add(name)
        session = Session(self, name, region, zone=zone)
        self.sessions[name] = session
        return session

    def _release_session(self, session: Session) -> None:
        self.sessions.pop(session.name, None)

    # ------------------------------------------------------------------
    # Session middleware (see repro.deploy.middleware)
    # ------------------------------------------------------------------
    def middleware_chain(self, shard_id: str) -> Optional[MiddlewareChain]:
        """The assembled chain for one shard (None when empty).

        Instances are cached by their ``name:options`` fingerprint, so
        identical declarations — cluster-wide or across shards — share
        one instance; shard-wide books (admission depth) and per-session
        books (rate buckets, read leases) live inside the instances.
        """
        if shard_id not in self._chains:
            shard_spec = next(
                s for s in self.spec.shards if s.shard_id == shard_id
            )
            entries = tuple(self.spec.middleware) + tuple(shard_spec.middleware)
            if entries:
                self._chains[shard_id] = MiddlewareChain(
                    [self._middleware_instance(entry) for entry in entries]
                )
            else:
                self._chains[shard_id] = None
        return self._chains[shard_id]

    def _middleware_instance(self, entry):
        fingerprint = entry.fingerprint()
        if fingerprint not in self._middleware_instances:
            self._middleware_instances[fingerprint] = build_middleware(
                entry.name, entry.options_dict()
            )
        return self._middleware_instances[fingerprint]

    def middleware_instance(self, name: str):
        """The first cached instance registered under ``name`` (metrics
        surface for benchmarks and tests)."""
        for instance in self._middleware_instances.values():
            if instance.name == name:
                return instance
        raise ConfigurationError(f"no middleware instance {name!r} built yet")

    # ------------------------------------------------------------------
    # Retirement bookkeeping (agreed RetireClient commands)
    # ------------------------------------------------------------------
    def _expect_retirements(self, session_name: str, shard_ids) -> None:
        """A closing session's clients await agreed retirement."""
        for shard_id in shard_ids:
            self._pending_retirement[f"{session_name}@{shard_id}"] = session_name
        self._retire_remaining[session_name] = len(list(shard_ids))

    def _note_client_retired(self, client_name: str) -> None:
        """An agreement replica applied an agreed RetireClient command."""
        session_name = self._pending_retirement.pop(client_name, None)
        if session_name is None:
            return
        remaining = self._retire_remaining.get(session_name, 1) - 1
        if remaining > 0:
            self._retire_remaining[session_name] = remaining
        else:
            self._retire_remaining.pop(session_name, None)
            self._forget_session_name(session_name)

    def _forget_session_name(self, session_name: str) -> None:
        """Move a name from the unbounded live set to the bounded ring."""
        self._session_names.discard(session_name)
        self._retired_names[session_name] = None
        while len(self._retired_names) > self.RETIRED_NAME_CAP:
            self._retired_names.pop(next(iter(self._retired_names)))

    def make_client(
        self,
        name: str,
        region: str,
        group_id: Optional[str] = None,
        zone: int = 1,
        shard_id: Optional[str] = None,
    ):
        """A raw protocol client bound to one shard (sessions build on
        this; direct use mirrors :meth:`repro.core.Shard.make_client`)."""
        shard = self.shard(shard_id) if shard_id else self._locate(group_id)
        return shard.make_client(name, region, group_id=group_id, zone=zone)

    def _locate(self, group_id: Optional[str]) -> Shard:
        if group_id is None:
            if len(self.shards) == 1:
                return self.system
            raise ConfigurationError(
                "multi-shard cluster: pass shard_id or group_id to make_client"
            )
        for shard in self.shards.values():
            if group_id in shard.groups:
                return shard
        raise ConfigurationError(f"no shard hosts group {group_id!r}")


# ----------------------------------------------------------------------
# The builder
# ----------------------------------------------------------------------
def build(sim, spec, network: Optional[Network] = None):
    """Materialise a spec: ``ClusterSpec -> Cluster``,
    ``BftSpec -> BftSystem``, ``HftSpec -> HftSystem``.

    ``network`` defaults to a fresh :class:`~repro.net.Network` over the
    standard topology; pass one to share jitter settings with a caller's
    environment (the experiment harnesses do).
    """
    if isinstance(spec, ClusterSpec):
        return _build_cluster(sim, spec, network)
    if isinstance(spec, BftSpec):
        return _build_bft(sim, spec, network)
    if isinstance(spec, HftSpec):
        return _build_hft(sim, spec, network)
    raise ConfigurationError(f"unknown spec type {type(spec).__name__}")


def _agreement_factory(spec: ClusterSpec):
    if spec.agreement_factory is not None:
        return spec.agreement_factory
    if spec.consensus == "raft":
        from repro.consensus.raft import RaftConfig, RaftReplica

        raft_config = RaftConfig()
        return lambda node, peers: RaftReplica(node, "raft-ag", peers, raft_config)
    # "pbft": None lets the Shard install its default PBFT factory — the
    # byte-identical historical path.
    return None


def _build_cluster(sim, spec: ClusterSpec, network: Optional[Network]) -> Cluster:
    spec.validate()
    network = network or Network(sim, Topology())
    multi = len(spec.shards) > 1
    factory = _agreement_factory(spec)
    shards: Dict[str, Shard] = {}
    for shard_spec in spec.shards:
        prefix = f"{shard_spec.shard_id}-" if multi else ""
        config = spec.config
        if multi:
            # Each shard gets its own admin principal; everything else is
            # shared.  (The nested PbftConfig is immutable in practice —
            # pbft_config() derives a fresh one per shard.)
            config = replace(spec.config, admins=(f"{prefix}admin",))
        shard = Shard(
            sim,
            config=config,
            network=network,
            agreement_region=shard_spec.agreement_region,
            app_factory=spec.app_factory,
            agreement_factory=factory,
            execute_locally=spec.execute_locally,
            agreement_zones=(
                list(shard_spec.agreement_zones)
                if shard_spec.agreement_zones is not None
                else None
            ),
            agreement_sites=(
                list(shard_spec.agreement_sites)
                if shard_spec.agreement_sites is not None
                else None
            ),
            name_prefix=prefix,
        )
        for group in shard_spec.groups:
            shard.add_execution_group(
                group.group_id,
                group.region,
                sites=list(group.sites) if group.sites is not None else None,
            )
        shards[shard_spec.shard_id] = shard
    return Cluster(sim, network, spec, shards)


def _build_bft(sim, spec: BftSpec, network: Optional[Network]):
    from repro.baselines import BftSystem

    spec.validate()
    return BftSystem(
        sim,
        list(spec.ordered_regions()),
        spec.app_factory,
        f=spec.f,
        network=network,
        weights=dict(spec.weights) if spec.weights else None,
        view_timeout_ms=spec.view_timeout_ms,
        checkpoint_interval=spec.checkpoint_interval,
    )


def _build_hft(sim, spec: HftSpec, network: Optional[Network]):
    from repro.baselines import HftSystem

    spec.validate()
    return HftSystem(
        sim,
        list(spec.ordered_regions()),
        spec.app_factory,
        f=spec.f,
        network=network,
        site_layout=(
            {region: list(sites) for region, sites in spec.site_layout}
            if spec.site_layout
            else None
        ),
    )
