"""Spec-to-system builder and the multi-shard cluster runtime.

:func:`build` is the single constructor for every architecture in the
repo: it turns a :class:`~repro.deploy.spec.ClusterSpec` into a
:class:`Cluster` (one :class:`~repro.core.Shard` per spec'd shard on a
shared network), and the baseline specs into their respective systems.

A single-shard spec builds the exact node graph the historical
hand-wired :class:`~repro.core.Shard` would have built — same
node names, same construction order, same event stream — so a 1-shard
run is byte-identical to the pre-spec path (regression-tested in
``tests/test_deploy.py``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional

from repro.core.system import Shard
from repro.deploy.middleware import MiddlewareChain, build_middleware
from repro.deploy.session import Session
from repro.deploy.spec import BftSpec, ClusterSpec, HftSpec, ShardSpec
from repro.elastic.plan import split_moves
from repro.elastic.rangemap import RangeMap
from repro.errors import ConfigurationError
from repro.net import Network, Topology
from repro.sim.futures import SimFuture

__all__ = ["KeyPartitioner", "Cluster", "build"]


class KeyPartitioner:
    """Deterministic key -> shard mapping shared by all sessions.

    Routing is delegated to an epoch-versioned
    :class:`~repro.elastic.rangemap.RangeMap`; the default table is the
    striped epoch-0 map, which reproduces the historical
    ``crc32(str(key)) mod N`` placement bit-for-bit (stable across
    platforms and interpreter runs, unlike builtin ``hash``), so in a
    deployment that never moves a range a key's owner remains a pure
    function of the spec.  Live resharding advances the table through
    :meth:`advance` (monotone in the epoch — stale tables never win).
    """

    def __init__(self, shard_ids, range_map: Optional[RangeMap] = None):
        self.shard_ids = tuple(shard_ids)
        if not self.shard_ids:
            raise ConfigurationError("partitioner needs at least one shard")
        self.range_map = (
            range_map if range_map is not None else RangeMap.modulo(self.shard_ids)
        )

    @property
    def epoch(self) -> int:
        """The routing epoch of the current table."""
        return self.range_map.epoch

    def owner(self, key: Any) -> str:
        """The shard id owning ``key`` in the current epoch."""
        return self.range_map.owner(key)

    def advance(self, range_map: RangeMap) -> bool:
        """Adopt a newer routing table; True iff it actually advanced."""
        if range_map.epoch <= self.range_map.epoch:
            return False
        self.range_map = range_map
        return True

    def register_shard(self, shard_id: str) -> None:
        """Make a newcomer shard known (it owns no slots until a
        ``MoveRange`` hands it some — see ``Cluster.add_shard``)."""
        if shard_id not in self.shard_ids:
            self.shard_ids = self.shard_ids + (shard_id,)

    def keys_for(self, shard_id: str, count: int, prefix: str = "key-"):
        """``count`` generated keys owned by ``shard_id`` (workload helper)."""
        if shard_id not in self.shard_ids:
            # owner() can never return an unknown id — without this the
            # search below would spin forever instead of failing fast.
            raise ConfigurationError(
                f"no shard {shard_id!r}; known: {sorted(self.shard_ids)}"
            )
        if shard_id not in self.range_map.owners():
            # Known but slotless (a newcomer before its first MoveRange):
            # the search below could likewise never terminate.
            raise ConfigurationError(
                f"shard {shard_id!r} owns no slots in epoch {self.epoch}; "
                f"owners: {list(self.range_map.owners())}"
            )
        found, index = [], 0
        while len(found) < count:
            key = f"{prefix}{index}"
            if self.owner(key) == shard_id:
                found.append(key)
            index += 1
        return found


class Cluster:
    """A built multi-shard deployment: shards + partitioner + sessions."""

    #: how many retired session names the reuse filter remembers (bounded,
    #: matching the channel layer's bounded retirement tombstones).
    RETIRED_NAME_CAP = 256

    def __init__(self, sim, network, spec: ClusterSpec, shards: Dict[str, Shard]):
        self.sim = sim
        self.network = network
        self.spec = spec
        self.shards: Dict[str, Shard] = dict(shards)
        self.partitioner = KeyPartitioner(self.shards.keys())
        #: live sessions only — fully closed ones are released.  A closed
        #: session's name stays in ``_session_names`` until the agreement
        #: group agrees its clients' retirement (RetireClient), then moves
        #: into the bounded ``_retired_names`` ring: reuse of a remembered
        #: name is rejected (the channel layer's bounded tombstones still
        #: remember the old subchannels), but the books no longer grow one
        #: entry per churned session forever.
        self.sessions: Dict[str, Session] = {}
        self._session_names: set = set()
        self._retired_names: Dict[str, None] = {}
        #: client name -> session name, for sessions whose close is
        #: awaiting agreed retirement; plus a per-session countdown.
        self._pending_retirement: Dict[str, str] = {}
        self._retire_remaining: Dict[str, int] = {}
        for shard in self.shards.values():
            for replica in getattr(shard, "agreement_replicas", []):
                replica.on_client_retired = self._note_client_retired
        #: middleware instances cached by ``name:options`` fingerprint,
        #: and the per-shard assembled chains (None = empty chain).
        self._middleware_instances: Dict[str, Any] = {}
        self._chains: Dict[str, Optional[MiddlewareChain]] = {}
        self.has_middleware = bool(spec.middleware) or any(
            shard_spec.middleware for shard_spec in spec.shards
        )

    # ------------------------------------------------------------------
    # Shard access
    # ------------------------------------------------------------------
    def shard(self, shard_id: str) -> Shard:
        try:
            return self.shards[shard_id]
        except KeyError:
            raise ConfigurationError(
                f"no shard {shard_id!r}; known: {sorted(self.shards)}"
            ) from None

    @property
    def system(self) -> Shard:
        """The sole shard of a single-shard cluster (compat convenience)."""
        if len(self.shards) != 1:
            raise ConfigurationError(
                "Cluster.system is defined for single-shard clusters only; "
                "use cluster.shard(shard_id)"
            )
        return next(iter(self.shards.values()))

    def shard_for_key(self, key: Any) -> Shard:
        return self.shards[self.partitioner.owner(key)]

    @property
    def all_nodes(self):
        nodes = []
        for shard in self.shards.values():
            nodes.extend(shard.all_nodes)
        return nodes

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def session(self, name: str, region: str, zone: int = 1) -> Session:
        """Open a :class:`~repro.deploy.session.Session` — the sharded
        key-value surface (``write`` / ``read`` / ``strong_read`` routed
        by the key partitioner).  Names are single-use: close a session
        rather than re-opening one under the same name."""
        if name in self._session_names or name in self._retired_names:
            raise ConfigurationError(f"session {name!r} already exists")
        self._session_names.add(name)
        session = Session(self, name, region, zone=zone)
        self.sessions[name] = session
        return session

    def _release_session(self, session: Session) -> None:
        self.sessions.pop(session.name, None)

    # ------------------------------------------------------------------
    # Session middleware (see repro.deploy.middleware)
    # ------------------------------------------------------------------
    def middleware_chain(self, shard_id: str) -> Optional[MiddlewareChain]:
        """The assembled chain for one shard (None when empty).

        Instances are cached by their ``name:options`` fingerprint, so
        identical declarations — cluster-wide or across shards — share
        one instance; shard-wide books (admission depth) and per-session
        books (rate buckets, read leases) live inside the instances.
        """
        if shard_id not in self._chains:
            shard_spec = next(
                s for s in self.spec.shards if s.shard_id == shard_id
            )
            entries = tuple(self.spec.middleware) + tuple(shard_spec.middleware)
            if entries:
                self._chains[shard_id] = MiddlewareChain(
                    [self._middleware_instance(entry) for entry in entries]
                )
            else:
                self._chains[shard_id] = None
        return self._chains[shard_id]

    def _middleware_instance(self, entry):
        fingerprint = entry.fingerprint()
        if fingerprint not in self._middleware_instances:
            self._middleware_instances[fingerprint] = build_middleware(
                entry.name, entry.options_dict()
            )
        return self._middleware_instances[fingerprint]

    def middleware_instance(self, name: str):
        """The first cached instance registered under ``name`` (metrics
        surface for benchmarks and tests)."""
        for instance in self._middleware_instances.values():
            if instance.name == name:
                return instance
        raise ConfigurationError(f"no middleware instance {name!r} built yet")

    # ------------------------------------------------------------------
    # Retirement bookkeeping (agreed RetireClient commands)
    # ------------------------------------------------------------------
    def _expect_retirements(self, session_name: str, shard_ids) -> None:
        """A closing session's clients await agreed retirement."""
        for shard_id in shard_ids:
            self._pending_retirement[f"{session_name}@{shard_id}"] = session_name
        self._retire_remaining[session_name] = len(list(shard_ids))

    def _note_client_retired(self, client_name: str) -> None:
        """An agreement replica applied an agreed RetireClient command."""
        session_name = self._pending_retirement.pop(client_name, None)
        if session_name is None:
            return
        remaining = self._retire_remaining.get(session_name, 1) - 1
        if remaining > 0:
            self._retire_remaining[session_name] = remaining
        else:
            self._retire_remaining.pop(session_name, None)
            self._forget_session_name(session_name)

    def _forget_session_name(self, session_name: str) -> None:
        """Move a name from the unbounded live set to the bounded ring."""
        self._session_names.discard(session_name)
        self._retired_names[session_name] = None
        while len(self._retired_names) > self.RETIRED_NAME_CAP:
            self._retired_names.pop(next(iter(self._retired_names)))

    def make_client(
        self,
        name: str,
        region: str,
        group_id: Optional[str] = None,
        zone: int = 1,
        shard_id: Optional[str] = None,
    ):
        """A raw protocol client bound to one shard (sessions build on
        this; direct use mirrors :meth:`repro.core.Shard.make_client`)."""
        shard = self.shard(shard_id) if shard_id else self._locate(group_id)
        return shard.make_client(name, region, group_id=group_id, zone=zone)

    def _locate(self, group_id: Optional[str]) -> Shard:
        if group_id is None:
            if len(self.shards) == 1:
                return self.system
            raise ConfigurationError(
                "multi-shard cluster: pass shard_id or group_id to make_client"
            )
        for shard in self.shards.values():
            if group_id in shard.groups:
                return shard
        raise ConfigurationError(f"no shard hosts group {group_id!r}")

    # ------------------------------------------------------------------
    # Elastic keyspace (live resharding — repro.elastic)
    # ------------------------------------------------------------------
    def move_range(
        self, range_start: int, range_end: int, src_shard: str, dst_shard: str
    ) -> SimFuture:
        """Hand slot range ``[range_start, range_end)`` from ``src_shard``
        to ``dst_shard`` under live traffic.

        Validates the declaration against the current routing table
        (``RangeMap.move`` — overlap, ownership, bounds), then drives the
        three-phase checkpoint-assisted handover through the shards'
        admin clients, each phase an ordered ``MoveRange`` command
        acknowledged by fe+1 execution replicas:

        1. **seal** (source stream): the range freezes — later ordered
           writes to it shed ``Migrating`` — and the ack carries the
           range-filtered state cut at the sealed frontier;
        2. **install** (destination stream): the cut is merged into the
           destination's application state, outside the journal;
        3. **commit** (source stream): the source drops the range and
           starts redirecting with ``WrongShard`` + the new table.

        Only then does this cluster adopt the bumped table, flipping
        every live session's routing and releasing their parked ops.
        One handover runs at a time per cluster (``SplitShard`` chains
        them); the returned future resolves with the adopted
        :class:`RangeMap`.
        """
        current = self.partitioner.range_map
        new_map = current.move(range_start, range_end, src_shard, dst_shard)
        src, dst = self.shard(src_shard), self.shard(dst_shard)
        common = dict(
            range_start=range_start,
            range_end=range_end,
            src_shard=src_shard,
            dst_shard=dst_shard,
            new_epoch=new_map.epoch,
            slots=current.slots,
            threshold=self.spec.config.fe + 1,
        )
        done = SimFuture(
            name=f"move:{src_shard}->{dst_shard}:{range_start}-{range_end}"
        )

        def after_seal(payload):
            _tag, items = payload
            dst.admin.move_range(phase="install", items=tuple(items), **common
                                 ).add_callback(after_install)

        def after_install(_payload):
            src.admin.move_range(phase="commit", range_map=new_map.to_wire(), **common
                                 ).add_callback(after_commit)

        def after_commit(_payload):
            self._adopt_map(new_map)
            done.resolve(new_map)

        src.admin.move_range(phase="seal", **common).add_callback(after_seal)
        return done

    def add_shard(self, shard_spec: ShardSpec) -> Shard:
        """Materialise a new shard on the live cluster (zero slots owned).

        The spec is validated in the context of the full cluster spec
        before any node exists; the shard is built exactly like
        ``build()`` would have built it (own admin principal, prefixed
        node names) and registered with the partitioner as slotless —
        keys route to it only after a ``MoveRange`` hands it a range.
        """
        new_spec = replace(self.spec, shards=self.spec.shards + (shard_spec,))
        new_spec.validate()
        self.spec = new_spec
        prefix = f"{shard_spec.shard_id}-"
        shard = _materialise_shard(
            self.sim, self.network, new_spec, shard_spec,
            _agreement_factory(new_spec), prefix,
        )
        self.shards[shard_spec.shard_id] = shard
        for replica in getattr(shard, "agreement_replicas", []):
            replica.on_client_retired = self._note_client_retired
        self.partitioner.register_shard(shard_spec.shard_id)
        return shard

    def split_shard(self, shard_spec: ShardSpec) -> SimFuture:
        """Bring ``shard_spec`` from zero to an equal keyspace share, live.

        ``add_shard`` + the :func:`~repro.elastic.plan.split_moves` plan,
        executed as sequential ``move_range`` handovers (each one epoch
        bump).  The returned future resolves with the final
        :class:`RangeMap` once the last handover committed.
        """
        shard = self.add_shard(shard_spec)
        moves = split_moves(self.partitioner.range_map, shard_spec.shard_id)
        done = SimFuture(name=f"split:{shard_spec.shard_id}")

        def run_next(index: int) -> None:
            if index >= len(moves):
                done.resolve(self.partitioner.range_map)
                return
            lo, hi, src = moves[index]
            self.move_range(lo, hi, src, shard_spec.shard_id).add_callback(
                lambda _map: run_next(index + 1)
            )

        run_next(0)
        return done

    def _adopt_map(self, range_map: RangeMap) -> None:
        """Flip routing to a newer table (no-op for stale ones) and
        release every live session's ops parked behind the epoch bump."""
        if self.partitioner.advance(range_map):
            for session in list(self.sessions.values()):
                # Parked ops first (they are the oldest unresolved ops of
                # their keys), then splice mis-routed queue backlogs over
                # to their new owners and re-pin.
                session._release_parked()
                session._rebalance_queues()


# ----------------------------------------------------------------------
# The builder
# ----------------------------------------------------------------------
def build(sim, spec, network: Optional[Network] = None):
    """Materialise a spec: ``ClusterSpec -> Cluster``,
    ``BftSpec -> BftSystem``, ``HftSpec -> HftSystem``.

    ``network`` defaults to a fresh :class:`~repro.net.Network` over the
    standard topology; pass one to share jitter settings with a caller's
    environment (the experiment harnesses do).
    """
    if isinstance(spec, ClusterSpec):
        return _build_cluster(sim, spec, network)
    if isinstance(spec, BftSpec):
        return _build_bft(sim, spec, network)
    if isinstance(spec, HftSpec):
        return _build_hft(sim, spec, network)
    raise ConfigurationError(f"unknown spec type {type(spec).__name__}")


def _agreement_factory(spec: ClusterSpec):
    if spec.agreement_factory is not None:
        return spec.agreement_factory
    if spec.consensus == "raft":
        from repro.consensus.raft import RaftConfig, RaftReplica

        raft_config = RaftConfig()
        return lambda node, peers: RaftReplica(node, "raft-ag", peers, raft_config)
    # "pbft": None lets the Shard install its default PBFT factory — the
    # byte-identical historical path.
    return None


def _materialise_shard(
    sim, network, spec: ClusterSpec, shard_spec: ShardSpec, factory, prefix: str
) -> Shard:
    """Build one shard's node graph (shared by the builder and the live
    ``Cluster.add_shard`` path, so both produce identical shards)."""
    config = spec.config
    if prefix:
        # Each shard gets its own admin principal; everything else is
        # shared.  (The nested PbftConfig is immutable in practice —
        # pbft_config() derives a fresh one per shard.)
        config = replace(spec.config, admins=(f"{prefix}admin",))
    shard = Shard(
        sim,
        config=config,
        network=network,
        agreement_region=shard_spec.agreement_region,
        app_factory=spec.app_factory,
        agreement_factory=factory,
        execute_locally=spec.execute_locally,
        agreement_zones=(
            list(shard_spec.agreement_zones)
            if shard_spec.agreement_zones is not None
            else None
        ),
        agreement_sites=(
            list(shard_spec.agreement_sites)
            if shard_spec.agreement_sites is not None
            else None
        ),
        name_prefix=prefix,
    )
    for group in shard_spec.groups:
        shard.add_execution_group(
            group.group_id,
            group.region,
            sites=list(group.sites) if group.sites is not None else None,
        )
    return shard


def _build_cluster(sim, spec: ClusterSpec, network: Optional[Network]) -> Cluster:
    spec.validate()
    network = network or Network(sim, Topology())
    multi = len(spec.shards) > 1
    factory = _agreement_factory(spec)
    shards: Dict[str, Shard] = {}
    for shard_spec in spec.shards:
        prefix = f"{shard_spec.shard_id}-" if multi else ""
        shards[shard_spec.shard_id] = _materialise_shard(
            sim, network, spec, shard_spec, factory, prefix
        )
    return Cluster(sim, network, spec, shards)


def _build_bft(sim, spec: BftSpec, network: Optional[Network]):
    from repro.baselines import BftSystem

    spec.validate()
    return BftSystem(
        sim,
        list(spec.ordered_regions()),
        spec.app_factory,
        f=spec.f,
        network=network,
        weights=dict(spec.weights) if spec.weights else None,
        view_timeout_ms=spec.view_timeout_ms,
        checkpoint_interval=spec.checkpoint_interval,
    )


def _build_hft(sim, spec: HftSpec, network: Optional[Network]):
    from repro.baselines import HftSystem

    spec.validate()
    return HftSystem(
        sim,
        list(spec.ordered_regions()),
        spec.app_factory,
        f=spec.f,
        network=network,
        site_layout=(
            {region: list(sites) for region, sites in spec.site_layout}
            if spec.site_layout
            else None
        ),
    )
