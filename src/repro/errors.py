"""Exception hierarchy shared across the repro library.

Every error raised by the library derives from :class:`ReproError` so that
applications embedding the simulator can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The simulator was driven into an invalid state (programming error)."""


class ConfigurationError(ReproError):
    """A system was configured with inconsistent or unsupported parameters."""


class AuthenticationError(ReproError):
    """A message failed signature or MAC validation."""


class ChannelClosedError(ReproError):
    """An IRMC endpoint was used after the channel had been closed."""


class TooOldError(ReproError):
    """A requested IRMC position lies before the current subchannel window.

    Mirrors the ``<TooOld, p'>`` return of the paper's ``receive()`` call:
    the ``new_start`` attribute carries the new lower bound of the window.
    """

    def __init__(self, new_start: int):
        super().__init__(f"position is below the window start {new_start}")
        self.new_start = new_start
