"""Deterministic discrete-event simulation substrate.

This package provides the runtime on which every protocol in the repository
executes:

* :class:`~repro.sim.core.Simulator` — the event loop (time in milliseconds).
* :class:`~repro.sim.futures.SimFuture` — resolvable one-shot values used to
  express the blocking calls of the paper's pseudocode.
* :class:`~repro.sim.process.Process` — generator-based coroutines; replica
  main loops ``yield`` futures or sleep durations.
* :class:`~repro.sim.node.Node` — a simulated machine with a serial CPU;
  crypto and execution charge CPU time that delays subsequent work, which is
  what makes throughput and CPU-usage experiments meaningful.
"""

from repro.sim.core import Simulator
from repro.sim.events import EventHandle
from repro.sim.futures import SimFuture, gather
from repro.sim.node import Node, charge, current_node
from repro.sim.process import Process, Sleep, sleep, spawn

__all__ = [
    "Simulator",
    "EventHandle",
    "SimFuture",
    "gather",
    "Node",
    "charge",
    "current_node",
    "Process",
    "Sleep",
    "sleep",
    "spawn",
]
