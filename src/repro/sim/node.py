"""Simulated machines with a serial CPU.

A :class:`Node` models one virtual machine (the paper used t3.small
instances).  All work on a node — message handlers, process resumptions,
timer callbacks — executes serially.  Work items *charge* CPU time (crypto
operations, request execution) through :func:`charge`; the charged time

* delays every message the work item sends (outgoing messages leave the node
  only once its CPU finished the work that produced them), and
* delays all subsequently queued work,

which is what produces CPU-bound saturation in the IRMC throughput
experiments (paper Fig. 9b/9c) and queueing delay under load.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Deque, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:  # runtime import would be circular: net imports sim
    from repro.net.network import Network
    from repro.net.topology import Site
    from repro.sim.core import Simulator
    from repro.sim.events import EventHandle

_current: Optional["Node"] = None


def current_node() -> Optional["Node"]:
    """The node whose CPU is executing right now (``None`` outside nodes).

    Crypto primitives use this to charge their CPU cost to whichever node
    invoked them, without every call site having to thread a node handle.
    """
    return _current


def charge(cost_ms: float) -> None:
    """Charge ``cost_ms`` of CPU time to the currently executing node.

    A no-op outside node context, so library code (e.g. crypto helpers) can
    be exercised from plain unit tests without a simulator.
    """
    node = _current
    if node is not None and cost_ms > 0:
        node._pending_cost += cost_ms


class Node:
    """A machine in a specific availability zone with a serial CPU.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Unique human-readable identifier (also used as the node's principal
        for signatures).
    site:
        A :class:`repro.net.topology.Site` giving region and availability
        zone; ``None`` is allowed for substrate-level unit tests.
    """

    def __init__(self, sim: "Simulator", name: str, site: Optional["Site"] = None):
        self.sim = sim
        self.name = name
        self.site = site
        self.network: Optional["Network"] = None  # assigned by Network.register
        self.crashed = False
        #: number of times :meth:`crash` was called; lets observers (e.g.
        #: fault behaviours holding delayed messages) detect that a crash
        #: happened even if the node has since recovered.
        self.crash_count = 0
        self.byzantine = False
        self.busy_until: float = 0.0
        self.busy_ms: float = 0.0
        #: NIC egress model: outgoing messages serialise through the NIC at
        #: this rate, one after another (t3.small-class burst bandwidth).
        #: ``None`` disables the model.
        self.egress_mbps: float = 500.0
        self.nic_busy_until: float = 0.0
        self._pending_cost: float = 0.0
        self._tasks: Deque[Tuple[Callable[..., Any], tuple]] = deque()
        self._dispatch_scheduled = False
        self._executing = False
        self._outbox: list = []
        #: callbacks run (as CPU tasks) after :meth:`recover`; components
        #: hosting timer chains or driver processes register here so a
        #: crash/recover cycle restores their liveness obligations.
        self._recovery_hooks: List[Callable[[], None]] = []
        #: callbacks run synchronously at the *start* of a recovery that
        #: follows ``crash(wipe=True)``: the durable/volatile split.  A wipe
        #: hook clears the component state that lived on the lost disk, so
        #: the node boots empty and the ordinary recovery hooks then rebuild
        #: it through the protocol (checkpoint install + log-suffix replay).
        self._wipe_hooks: List[Callable[[], None]] = []
        #: whether the last crash destroyed durable state too.
        self.wiped = False
        #: number of wiped restarts this node went through.
        self.wipe_count = 0
        #: local clock model: a skewed node's timers fire at ``delay /
        #: clock_rate`` real (simulated) milliseconds — a fast clock
        #: (rate > 1) fires timeouts early, a slow one late.  Exactly 1.0
        #: (the default) takes an arithmetic-free fast path so healthy runs
        #: stay bit-identical to a build without the clock model.
        self.clock_rate: float = 1.0

    # ------------------------------------------------------------------
    # CPU scheduling
    # ------------------------------------------------------------------
    def run_task(self, fn: Callable[..., Any], *args: Any) -> None:
        """Queue ``fn(*args)`` for execution on this node's CPU."""
        if self.crashed:
            return
        self._tasks.append((fn, args))
        if not (self._dispatch_scheduled or self._executing):
            self._post_dispatch()

    def _schedule_dispatch(self) -> None:
        if self._dispatch_scheduled or self._executing or not self._tasks:
            return
        self._post_dispatch()

    def _post_dispatch(self) -> None:
        # Inlined fire-and-forget schedule of ``_dispatch`` at the CPU-free
        # time: this path runs once per queued task, so it bypasses the
        # ``Simulator.post_at`` call overhead (start time is never in the
        # past by construction).
        self._dispatch_scheduled = True
        sim = self.sim
        now = sim.now
        busy_until = self.busy_until
        sim._seq += 1
        heappush(
            sim._queue,
            (busy_until if busy_until > now else now, sim._seq, self._dispatch, ()),
        )

    def _dispatch(self) -> None:
        global _current
        self._dispatch_scheduled = False
        if self.crashed or not self._tasks:
            return
        fn, args = self._tasks.popleft()
        sim = self.sim
        start = sim.now
        previous = _current
        _current = self
        self._executing = True
        self._pending_cost = 0.0
        try:
            fn(*args)
        finally:
            _current = previous
            self._executing = False
        cost = self._pending_cost
        self._pending_cost = 0.0
        busy_until = start + cost
        self.busy_until = busy_until
        self.busy_ms += cost
        if self._outbox:
            self._flush_outbox(busy_until)
        if self._tasks:
            self._post_dispatch()

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst: "Node", message: Any) -> None:
        """Transmit ``message`` to ``dst`` over the network.

        When called from within a CPU task, the transmission is deferred
        until the task's charged CPU time has elapsed.
        """
        if self.crashed:
            return
        if self.network is None:
            raise SimulationError(f"node {self.name} is not attached to a network")
        if self._executing:
            self._outbox.append((dst, message))
        else:
            self.network.send(self, dst, message)

    def send_all(self, destinations: Iterable["Node"], message: Any) -> None:
        """Send one copy of ``message`` to each node in ``destinations``."""
        for dst in destinations:
            if dst is not self:
                self.send(dst, message)

    def _flush_outbox(self, at_time: float) -> None:
        network = self.network
        if not self._outbox or network is None:
            return
        pending, self._outbox = self._outbox, []
        if at_time <= self.sim.now:
            for dst, message in pending:
                network.send(self, dst, message)
        else:
            self.sim.post_at(at_time, self._transmit_batch, pending)

    def _transmit_batch(self, pending: List[Tuple["Node", Any]]) -> None:
        network = self.network
        if self.crashed or network is None:
            return
        for dst, message in pending:
            network.send(self, dst, message)

    def deliver(self, src: "Node", message: Any) -> None:
        """Entry point used by the network; dispatches to ``on_message``."""
        if self.crashed:
            return
        self._tasks.append((self.on_message, (src, message)))
        if not (self._dispatch_scheduled or self._executing):
            self._post_dispatch()

    def on_message(self, src: "Node", message: Any) -> None:
        """Override in subclasses: handle one received message."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timeout(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> "EventHandle":
        """Run ``fn(*args)`` on this CPU after ``delay`` ms; returns a handle.

        The delay is measured on the node's *local* clock: under clock skew
        (``clock_rate != 1.0``) a requested ``delay`` elapses in ``delay /
        clock_rate`` simulated milliseconds, so a fast clock misfires
        timeouts early and a slow one late.  Skew applies at arm time only —
        already-scheduled timers keep their original deadline, as a real
        drifting clock would for an absolute hardware timer.
        """
        rate = self.clock_rate
        if rate != 1.0 and rate > 0.0:
            delay = delay / rate
        return self.sim.schedule(delay, self.run_task, fn, *args)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def crash(self, wipe: bool = False) -> None:
        """Fail-stop the node: pending work and future messages are dropped.

        ``wipe=True`` additionally marks the crash as a *disk loss*: on the
        next :meth:`recover` the registered wipe hooks run first, clearing
        every component's durable state, so the node reboots empty and must
        rebuild through the protocol (full checkpoint install plus
        log-suffix replay) rather than resuming from preserved state.
        """
        self.crashed = True
        self.crash_count += 1
        if wipe:
            self.wiped = True
        self._tasks.clear()
        self._outbox.clear()

    def recover(self) -> None:
        """Clear the crash flag and run the registered recovery hooks.

        State is whatever the subclass preserved; what a crash *does*
        destroy is the node's scheduled work — queued tasks, in-flight
        process resumptions, fired-but-undispatched timer callbacks.
        Recovery hooks are each component's chance to re-arm those (respawn
        driver processes, restart timer chains, request state transfer);
        they run as ordinary CPU tasks in registration order.  Idempotent:
        recovering a node that is not crashed does nothing.

        After a ``crash(wipe=True)`` the wipe hooks run *synchronously
        first* — the process boots with an empty disk before any recovery
        task gets CPU time — so recovery hooks always observe the
        post-wipe state.
        """
        if not self.crashed:
            return
        self.crashed = False
        if self.wiped:
            self.wiped = False
            self.wipe_count += 1
            for hook in list(self._wipe_hooks):
                hook()
        for hook in list(self._recovery_hooks):
            self.run_task(hook)

    def add_recovery_hook(self, hook: Callable[[], None]) -> None:
        """Register ``hook`` to run on this node's CPU after each recovery."""
        self._recovery_hooks.append(hook)

    def remove_recovery_hook(self, hook: Callable[[], None]) -> None:
        """Deregister a recovery hook (e.g. when a component closes)."""
        if hook in self._recovery_hooks:
            self._recovery_hooks.remove(hook)

    def add_wipe_hook(self, hook: Callable[[], None]) -> None:
        """Register ``hook`` to clear a component's durable state on a
        wiped restart (runs synchronously, before the recovery hooks)."""
        self._wipe_hooks.append(hook)

    def remove_wipe_hook(self, hook: Callable[[], None]) -> None:
        """Deregister a wipe hook (e.g. when a component closes)."""
        if hook in self._wipe_hooks:
            self._wipe_hooks.remove(hook)

    def nic_delay(self, size_bytes: int) -> float:
        """Queueing + serialization delay of sending ``size_bytes`` now.

        Advances the NIC busy horizon, so back-to-back large messages queue
        behind each other — this is what caps IRMC throughput for big
        payloads (paper Fig. 9b).
        """
        if not self.egress_mbps:
            return 0.0
        now = self.sim.now
        nic_busy = self.nic_busy_until
        departure = (nic_busy if nic_busy > now else now) + (size_bytes * 8.0) / (
            self.egress_mbps * 1000.0
        )
        self.nic_busy_until = departure
        return departure - now

    def cpu_utilisation(self, window_start: float, busy_at_start: float) -> float:
        """Fraction of [window_start, now] this node's CPU spent busy."""
        elapsed = self.sim.now - window_start
        if elapsed <= 0:
            return 0.0
        return min(1.0, (self.busy_ms - busy_at_start) / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} site={self.site}>"
