"""Event-queue plumbing for the simulator.

Events are ordered by ``(time, sequence)`` where the sequence number breaks
ties deterministically in insertion order.  The heap itself stores
``(time, seq, handle)`` tuples so that :mod:`heapq` compares keys entirely
in C without calling back into Python.  Cancellation is lazy: cancelled
entries stay in the heap and are skipped when popped, while the simulator
keeps an O(1) live count and compacts the heap when cancelled entries
dominate it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    from repro.sim.core import Simulator


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired", "sim")

    def __init__(
        self,
        sim: "Simulator",
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
    ):
        self.sim = sim
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        # Drop references so cancelled events do not pin object graphs alive
        # while they wait to be popped from the heap.
        self.fn = _noop
        self.args = ()
        sim = self.sim
        if sim is not None:
            sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<EventHandle t={self.time:.3f} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    return None
