"""Event-queue plumbing for the simulator.

Events are ordered by ``(time, sequence)`` where the sequence number breaks
ties deterministically in insertion order.  Cancellation is lazy: cancelled
entries stay in the heap and are skipped when popped.
"""

from __future__ import annotations

from typing import Any, Callable


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        # Drop references so cancelled events do not pin object graphs alive
        # while they wait to be popped from the heap.
        self.fn = _noop
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.3f} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    return None
