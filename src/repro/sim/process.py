"""Generator-based coroutine processes.

A process wraps a Python generator.  The generator expresses the blocking
structure of the paper's pseudocode directly::

    def main_loop(self):
        while True:
            msg = yield self.commit_irmc.receive(0, self.sn + 1)
            ...

Yieldable values
----------------
* :class:`~repro.sim.futures.SimFuture` — suspend until resolved; the
  ``yield`` expression evaluates to the future's value.
* ``float``/``int`` or :func:`sleep(t) <sleep>` — suspend for ``t`` simulated
  milliseconds.

If the process is bound to a :class:`~repro.sim.node.Node`, every resumption
runs on that node's serial CPU, so a busy node delays its own main loops —
exactly like a busy replica thread would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.futures import SimFuture

if TYPE_CHECKING:
    from repro.sim.core import Simulator
    from repro.sim.node import Node


class Sleep:
    """Sentinel yielded by a process that wants to pause for ``delay`` ms."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        self.delay = delay


def sleep(delay: float) -> Sleep:
    """Readable alias: ``yield sleep(10)`` pauses for ten milliseconds."""
    return Sleep(delay)


class Process:
    """Drives a generator over the simulator, one resumption per event.

    Parameters
    ----------
    sim:
        The owning simulator.
    generator:
        The coroutine body.
    node:
        Optional node whose CPU executes each resumption (and is charged for
        the crypto/application work the resumption performs).
    name:
        Debugging label.
    """

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator,
        node: Optional["Node"] = None,
        name: str = "",
    ):
        self.sim = sim
        self.node = node
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self.finished = False
        self.result: Any = None
        self.completion = SimFuture(name=f"{self.name}.completion")
        # Kick off the first resumption as a fresh event so that spawning a
        # process never runs user code synchronously inside the caller.
        if node is not None:
            node.run_task(self._step, None)
        else:
            sim.post(0.0, self._step, None)

    def _step(self, value: Any) -> None:
        if self.finished:
            return
        try:
            yielded = self._generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.completion.resolve(stop.value)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, SimFuture):
            yielded.add_callback(self._resume)
        elif isinstance(yielded, Sleep):
            self.sim.post(yielded.delay, self._resume, None)
        elif isinstance(yielded, (int, float)):
            self.sim.post(float(yielded), self._resume, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )

    def _resume(self, value: Any) -> None:
        # Route the continuation through the node CPU when bound to one, so
        # a saturated replica cannot make protocol progress for free.
        if self.node is not None:
            self.node.run_task(self._step, value)
        else:
            self.sim.post(0.0, self._step, value)

    def stop(self) -> None:
        """Terminate the process; it will never be resumed again."""
        self.finished = True
        self._generator.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name!r} {state}>"


def spawn(
    sim: "Simulator",
    generator: Generator,
    node: Optional["Node"] = None,
    name: str = "",
) -> Process:
    """Convenience wrapper mirroring ``Process(...)`` with keyword ergonomics."""
    return Process(sim, generator, node=node, name=name)
