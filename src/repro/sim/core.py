"""The simulator event loop.

Time is a ``float`` measured in **milliseconds**.  All randomness used by a
simulation flows from the single seeded :class:`random.Random` owned by the
:class:`Simulator`, which makes every run reproducible bit-for-bit.

Hot-path notes
--------------
The heap holds plain tuples, so ``heapq`` compares keys entirely in C (no
Python ``__lt__`` per sift step); the unique ``seq`` guarantees
deterministic ordering no matter how the heap arranges equal-time entries
internally.  Two entry shapes share the heap:

* ``(time, seq, handle)`` — cancellable events from :meth:`schedule`.
* ``(time, seq, fn, args)`` — fire-and-forget events from :meth:`post`,
  which skip the :class:`EventHandle` allocation entirely (message
  deliveries and CPU dispatches dominate the queue and are never
  cancelled).

Cancellation stays lazy, but the simulator tracks live/cancelled counts so
``pending_events`` is O(1) and the heap is compacted once cancelled entries
outnumber live ones.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import EventHandle

#: Compaction threshold: never rebuild tiny heaps.
_COMPACT_MIN = 64

_INFINITY = float("inf")


class Simulator:
    """Deterministic discrete-event loop.

    Example
    -------
    >>> sim = Simulator(seed=7)
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.seed = seed
        # lint: allow[D103] -- the Simulator owns the root RNG; ``seed`` is
        # the namespace root every tagged f"tag:{seed}:..." stream derives from
        self.rng = random.Random(seed)
        self._queue: List[Tuple] = []
        self._seq = 0
        self._cancelled = 0
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` milliseconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        self._seq += 1
        handle = EventHandle(self, time, self._seq, fn, args)
        heapq.heappush(self._queue, (time, self._seq, handle))
        return handle

    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, no cancellation.

        The cheap path for the simulator's bulk traffic (message
        deliveries, CPU dispatch ticks); semantically identical to
        ``schedule`` except that the event cannot be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, fn, args))

    def post_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`; see :meth:`post`."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, fn, args))

    # ------------------------------------------------------------------
    # Lazy-cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel`; keeps counters O(1)."""
        self._cancelled += 1
        if self._cancelled > _COMPACT_MIN and self._cancelled * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        ``seq`` keys are unique, so the pop order of the rebuilt heap is
        identical to the lazy-deletion order — determinism is unaffected.
        """
        self._queue = [
            entry
            for entry in self._queue
            if len(entry) == 4 or not entry[2].cancelled
        ]
        heapq.heapify(self._queue)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Return ``False`` if none remain."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            if len(entry) == 4:
                self.now = entry[0]
                self._events_processed += 1
                entry[2](*entry[3])
                return True
            event = entry[2]
            if event.cancelled:
                self._cancelled -= 1
                continue
            event.fired = True
            self.now = entry[0]
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this bound; the clock is
            then advanced to exactly ``until``.
        max_events:
            Safety valve for tests; raise if more events than this fire.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        pop = heapq.heappop
        bound = _INFINITY if until is None else until
        budget = _INFINITY if max_events is None else max_events
        processed = 0
        try:
            queue = self._queue
            while queue:
                entry = queue[0]
                time = entry[0]
                if len(entry) == 4:
                    if time > bound:
                        break
                    pop(queue)
                    self.now = time
                    entry[2](*entry[3])
                else:
                    event = entry[2]
                    if event.cancelled:
                        pop(queue)
                        self._cancelled -= 1
                        # Cancellation may have compacted the heap; re-bind.
                        queue = self._queue
                        continue
                    if time > bound:
                        break
                    pop(queue)
                    event.fired = True
                    self.now = time
                    event.fn(*event.args)
                queue = self._queue
                processed += 1
                if processed > budget:
                    raise SimulationError(f"exceeded max_events={max_events}")
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._events_processed += processed
            self._running = False

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return len(self._queue) - self._cancelled

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.3f} pending={self.pending_events}>"
