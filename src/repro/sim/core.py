"""The simulator event loop.

Time is a ``float`` measured in **milliseconds**.  All randomness used by a
simulation flows from the single seeded :class:`random.Random` owned by the
:class:`Simulator`, which makes every run reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.events import EventHandle


class Simulator:
    """Deterministic discrete-event loop.

    Example
    -------
    >>> sim = Simulator(seed=7)
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.seed = seed
        self.rng = random.Random(seed)
        self._queue: List[EventHandle] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` milliseconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        self._seq += 1
        handle = EventHandle(time, self._seq, fn, args)
        heapq.heappush(self._queue, handle)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Return ``False`` if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this bound; the clock is
            then advanced to exactly ``until``.
        max_events:
            Safety valve for tests; raise if more events than this fire.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                if not self.step():
                    break
                processed += 1
                if max_events is not None and processed > max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.3f} pending={len(self._queue)}>"
