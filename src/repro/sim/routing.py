"""Message routing from nodes to protocol components.

A simulated machine usually hosts several protocol *components* — e.g. a
Spider agreement replica runs a PBFT instance, a checkpoint component and a
pair of IRMC endpoints per execution group.  Components stamp every message
they send with their ``tag`` (a deterministic string identical on all nodes
participating in that component instance), and :class:`RoutedNode` dispatches
incoming messages to the component registered for the tag.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.sim.node import Node

if TYPE_CHECKING:
    from repro.net.topology import Site
    from repro.sim.core import Simulator

Handler = Callable[[Node, Any], None]


class RoutedNode(Node):
    """A node that dispatches messages to registered component handlers."""

    def __init__(self, sim: "Simulator", name: str, site: Optional["Site"] = None):
        super().__init__(sim, name, site)
        self._routes: Dict[str, Handler] = {}
        self._default_handler: Optional[Handler] = None

    def register_route(self, tag: str, handler: Handler) -> None:
        if tag in self._routes:
            raise ValueError(f"duplicate route tag {tag!r} on node {self.name}")
        self._routes[tag] = handler

    def unregister_route(self, tag: str) -> None:
        self._routes.pop(tag, None)

    def set_default_handler(self, handler: Handler) -> None:
        """Handler for messages without a tag (e.g. client requests)."""
        self._default_handler = handler

    def on_message(self, src: Node, message: Any) -> None:
        tag = getattr(message, "tag", None)
        handler = self._routes.get(tag) if tag is not None else None
        if handler is None:
            handler = self._default_handler
        if handler is not None:
            handler(src, message)
        # Messages for unknown components are silently dropped, matching a
        # real system discarding traffic for closed channels.


class Component:
    """Base class for protocol components hosted on a :class:`RoutedNode`.

    Subclasses implement :meth:`handle` and send through :meth:`send` /
    :meth:`broadcast`; the component's ``tag`` must already be embedded in
    the messages they construct (messages are immutable dataclasses).
    """

    def __init__(self, node: RoutedNode, tag: str):
        self.node = node
        self.tag = tag
        node.register_route(tag, self.handle)

    @property
    def sim(self) -> "Simulator":
        return self.node.sim

    def handle(self, src: Node, message: Any) -> None:
        raise NotImplementedError

    def send(self, dst: Node, message: Any) -> None:
        self.node.send(dst, message)

    def broadcast(self, nodes, message: Any, include_self: bool = False) -> None:
        for dst in nodes:
            if dst is self.node and not include_self:
                continue
            if dst is self.node:
                # Local delivery still goes through the CPU queue for
                # fairness, but skips the network.
                self.node.run_task(self.handle, self.node, message)
            else:
                self.node.send(dst, message)

    def close(self) -> None:
        self.node.unregister_route(self.tag)
