"""One-shot resolvable values used to express blocking calls.

The paper's pseudocode is written in terms of blocking methods such as
``IRMC.receive()``.  In the simulator those methods return a
:class:`SimFuture`; the calling :class:`~repro.sim.process.Process` yields it
and is resumed with the result once another event resolves it.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.errors import SimulationError


class SimFuture:
    """A single-assignment value with resolution callbacks.

    Unlike ``asyncio`` futures there is no event loop affinity; callbacks run
    synchronously inside :meth:`resolve` (the simulator's event handlers are
    already serialised, so this is safe and keeps the event count low).
    """

    __slots__ = ("_done", "_value", "_callbacks", "name")

    def __init__(self, name: str = ""):
        self._done = False
        self._value: Any = None
        self._callbacks: List[Callable[[Any], None]] = []
        self.name = name

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError(f"future {self.name!r} read before resolution")
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Assign the result and fire callbacks.  Resolving twice is an error."""
        if self._done:
            raise SimulationError(f"future {self.name!r} resolved twice")
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def try_resolve(self, value: Any = None) -> bool:
        """Resolve if still pending; return whether this call resolved it."""
        if self._done:
            return False
        self.resolve(value)
        return True

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Run ``callback(value)`` on resolution (immediately if already done)."""
        if self._done:
            callback(self._value)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"done={self._value!r}" if self._done else "pending"
        return f"<SimFuture {self.name!r} {state}>"


def gather(futures: List[SimFuture], count: Optional[int] = None) -> SimFuture:
    """Return a future resolving once ``count`` of ``futures`` resolved.

    ``count`` defaults to all of them.  The result is the list of resolved
    values in completion order.  Used, e.g., by the agreement replica that
    waits for ``n_e - z`` commit-channel sends to complete (paper L. 17.37).
    """
    needed = len(futures) if count is None else count
    result = SimFuture(name="gather")
    if needed <= 0:
        result.resolve([])
        return result
    collected: List[Any] = []

    def on_done(value: Any) -> None:
        if result.done:
            return
        collected.append(value)
        if len(collected) >= needed:
            result.resolve(list(collected))

    for future in futures:
        future.add_callback(on_done)
    return result
