"""Benchmark regenerating Fig. 9a (modularity impact)."""

from repro.experiments.fig9_modularity import run


def test_fig9_modularity(experiment):
    result = experiment(run)
    rows = {row["variant"]: row for row in result.rows}

    # The paper: modularization overhead below ~14 ms per client region.
    for column in ("V p50", "O p50", "I p50", "T p50"):
        base = rows["SPIDER-0E"][column]
        assert rows["SPIDER-1E"][column] - base < 14.0
        assert rows["SPIDER"][column] - base < 14.0

    # Response times stay dominated by client-to-Virginia WAN latency.
    assert rows["SPIDER"]["T p50"] > 10 * rows["SPIDER"]["V p50"]
