"""Benchmark regenerating Fig. 10 (a new client site joins at runtime)."""

from repro.experiments.fig10_adaptability import run


def test_fig10_adaptability(experiment):
    result = experiment(run)
    rows = result.rows
    join_s = rows[-1]["t [s]"] * 0.72  # join happens at ~72% of the run
    before = [row for row in rows if row["t [s]"] + 5.0 <= join_s]
    after = [row for row in rows if row["t [s]"] >= join_s]
    assert before and after

    def average(selection, column):
        values = [row[column] for row in selection if row[column] > 0]
        return sum(values) / max(1, len(values))

    # Write latency jumps for every system once Sao Paulo joins.
    for system in ("BFT", "BFT-WV", "HFT", "SPIDER"):
        assert average(after, f"{system} w") > average(before, f"{system} w") + 3.0

    # BFT-WV tracks BFT: weighted voting does not help at this topology.
    assert abs(average(after, "BFT-WV w") - average(after, "BFT w")) < 60.0

    # Only Spider keeps weakly consistent reads low after the join.
    assert average(after, "SPIDER r") < 5.0
    assert average(after, "HFT r") > average(before, "HFT r") + 2.0
    assert average(after, "BFT r") > 30.0
