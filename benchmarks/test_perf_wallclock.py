"""Wall-clock macro-benchmark for the simulator's hot paths.

Unlike the figure benchmarks (which report *simulated* latency and
throughput), this harness measures how fast the simulator itself runs:
wall-clock seconds and events per wall-clock second for two paper-shaped
scenarios, with a fixed seed so runs are comparable across commits:

* ``fig7_write_saturated`` — the standard 4-region Spider deployment
  driven by closed-loop write clients with zero think time (a saturated
  Fig. 7-style workload dominated by consensus + commit-channel traffic).
* ``fig9_irmc_<kind>_<size>`` — one commit-channel-shaped IRMC channel
  (3 senders Virginia -> 4 receivers Tokyo) pumped at saturation, for
  both RC and SC variants (the Fig. 9b sweep).

Results are written to ``benchmarks/BENCH_perf.json``.  Each scenario
also records a ``sim_fingerprint`` over its simulated results: the
fingerprint must be byte-identical across commits for the same seed —
wall-clock optimisations must never change simulated outcomes.

Run directly for the full table::

    PYTHONPATH=src python benchmarks/test_perf_wallclock.py

or via pytest (the ``bench`` marker keeps it out of tier-1)::

    PYTHONPATH=src python -m pytest -q benchmarks/test_perf_wallclock.py
"""

# lint: allow-file[D102] -- this harness *measures* wall-clock time;
# simulated results are pinned separately by sim_fingerprint
from __future__ import annotations

import json
import pathlib
import time
import zlib

from repro.experiments.common import REGIONS, build_spider, fresh_env
from repro.irmc import IrmcConfig, make_channel
from repro.net import Payload, Site
from repro.sim import Process
from repro.sim.routing import RoutedNode
from repro.workload import ClosedLoopDriver, OperationMix

SEED = 11
OUTPUT_PATH = pathlib.Path(__file__).parent / "BENCH_perf.json"

#: Saturated write workload scale (kept modest so CI smoke stays fast).
FIG7_CLIENTS_PER_REGION = 6
FIG7_DURATION_MS = 12_000.0

#: IRMC sweep scale.
IRMC_SIZES = [1024, 16384]
IRMC_DURATION_MS = 3_000.0
IRMC_WINDOW_MOVE_BATCH = 64
IRMC_CAPACITY = 2048


def _fingerprint(obj) -> int:
    """Stable checksum of simulated results, for cross-commit parity."""
    return zlib.crc32(repr(obj).encode("utf-8", errors="replace"))


# ----------------------------------------------------------------------
# Scenario: saturated Fig. 7-style write workload
# ----------------------------------------------------------------------
def run_fig7_write_saturated(seed: int = SEED) -> dict:
    sim, network = fresh_env(seed=seed)
    system = build_spider(sim, network)
    clients = []
    for region in REGIONS:
        for index in range(FIG7_CLIENTS_PER_REGION):
            client = system.make_client(f"cl-{region}-{index}", region)
            clients.append(client)
            ClosedLoopDriver(
                sim,
                client,
                think_ms=0.0,
                mix=OperationMix(write=1.0),
                duration_ms=FIG7_DURATION_MS,
            )
    sim.run(until=FIG7_DURATION_MS + 20_000.0)
    writes = sum(len(client.completed) for client in clients)
    return {
        "events": sim.events_processed,
        "sim_ms": sim.now,
        "writes_completed": writes,
        "sim_fingerprint": _fingerprint(
            [(client.name, client.completed) for client in clients]
        ),
    }


# ----------------------------------------------------------------------
# Scenario: Fig. 9b-style IRMC channel at saturation
# ----------------------------------------------------------------------
def run_irmc_saturated(kind: str, size: int, seed: int = SEED) -> dict:
    sim, network = fresh_env(seed=seed, jitter=0.0)
    senders = [
        network.register(RoutedNode(sim, f"s{i}", Site("virginia", i + 1)))
        for i in range(3)
    ]
    receivers = [
        network.register(RoutedNode(sim, f"r{i}", Site("tokyo", i + 1)))
        for i in range(4)
    ]
    config = IrmcConfig(fs=1, fr=1, capacity=IRMC_CAPACITY, progress_interval_ms=200.0)
    tx_endpoints, rx_endpoints = make_channel(kind, "perf", senders, receivers, config)

    def sender_loop(endpoint):
        position = 1
        payload = Payload(size, label="perf")
        while True:
            yield endpoint.send(0, position, payload)
            position += 1

    def receiver_loop(endpoint, deliveries):
        position = 1
        while True:
            yield endpoint.receive(0, position)
            deliveries.append(sim.now)
            if position % IRMC_WINDOW_MOVE_BATCH == 0:
                endpoint.move_window(0, position + 1)
            position += 1

    deliveries: list = []
    for node in senders:
        Process(sim, sender_loop(tx_endpoints[node.name]), node=node)
    for index, node in enumerate(receivers):
        sink = deliveries if index == 0 else []
        Process(sim, receiver_loop(rx_endpoints[node.name], sink), node=node)
    sim.run(until=IRMC_DURATION_MS)
    return {
        "events": sim.events_processed,
        "sim_ms": sim.now,
        "delivered": len(deliveries),
        "sim_fingerprint": _fingerprint(deliveries),
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _timed(fn, *args) -> dict:
    started = time.perf_counter()
    stats = fn(*args)
    wall_s = time.perf_counter() - started
    stats["wall_s"] = round(wall_s, 3)
    stats["events_per_s"] = round(stats["events"] / wall_s) if wall_s > 0 else 0
    return stats


def run_all(seed: int = SEED) -> dict:
    scenarios = {"fig7_write_saturated": _timed(run_fig7_write_saturated, seed)}
    for kind in ("rc", "sc"):
        for size in IRMC_SIZES:
            scenarios[f"fig9_irmc_{kind}_{size}"] = _timed(
                run_irmc_saturated, kind, size, seed
            )
    total_events = sum(s["events"] for s in scenarios.values())
    total_wall = sum(s["wall_s"] for s in scenarios.values())
    return {
        "benchmark": "perf_wallclock",
        "seed": seed,
        "scenarios": scenarios,
        "total": {
            "events": total_events,
            "wall_s": round(total_wall, 3),
            "events_per_s": round(total_events / total_wall) if total_wall else 0,
        },
    }


def test_perf_wallclock():
    report = run_all()
    fig7 = report["scenarios"]["fig7_write_saturated"]
    # The scenarios must actually exercise the system end to end.
    assert fig7["writes_completed"] > 500, fig7
    for name, stats in report["scenarios"].items():
        assert stats["events"] > 1_000, (name, stats)
        assert stats["events_per_s"] > 0, (name, stats)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print()
    print(json.dumps(report, indent=2, sort_keys=True))


if __name__ == "__main__":  # pragma: no cover
    report = run_all()
    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
