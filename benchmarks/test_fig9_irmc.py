"""Benchmark regenerating Figs. 9b-9d (IRMC implementations)."""

from repro.experiments.fig9_irmc import run


def test_fig9_irmc(experiment):
    result = experiment(run)
    rows = {(row["irmc"], row["size [B]"]): row for row in result.rows}
    small, large = 256, 4096

    # 9b: RC reaches higher maximum throughput than SC (paper: roughly 2x).
    assert (
        rows[("RC", small)]["throughput [msg/s]"]
        > 1.5 * rows[("SC", small)]["throughput [msg/s]"]
    )

    # 9c: at a fixed offered load, SC senders burn more CPU per message.
    assert (
        rows[("SC", small)]["sender CPU [%]"]
        > 1.5 * rows[("RC", small)]["sender CPU [%]"]
    )

    # 9d: SC moves far less WAN data per delivered payload, at the price of
    # LAN share traffic which RC does not have at all.
    rc_wan_per_msg = rows[("RC", large)]["WAN [MB/s]"] / rows[("RC", large)][
        "throughput [msg/s]"
    ]
    sc_wan_per_msg = rows[("SC", large)]["WAN [MB/s]"] / rows[("SC", large)][
        "throughput [msg/s]"
    ]
    assert sc_wan_per_msg < 0.6 * rc_wan_per_msg
    assert rows[("SC", small)]["LAN [MB/s]"] > 0.0
    assert rows[("RC", small)]["LAN [MB/s]"] == 0.0
