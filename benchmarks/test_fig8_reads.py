"""Benchmark regenerating Fig. 8 (read latency by consistency level)."""

from repro.experiments.fig8_reads import run


def test_fig8_reads(experiment):
    result = experiment(run)
    rows = {(row["system"], row["consistency"]): row for row in result.rows}

    # Weak reads: HFT and Spider are local (paper: <= 2 ms); BFT needs at
    # least one WAN reply for its f+1 quorum.
    for system in ("HFT", "SPIDER"):
        for column in ("V p50", "O p50", "I p50", "T p50"):
            assert rows[(system, "weak")][column] < 5.0
    assert rows[("BFT", "weak")]["V p50"] > 30.0

    # Strong reads follow the write pattern: Spider wins everywhere except
    # (possibly) Tokyo, where BFT/HFT query replicas directly.
    spider = rows[("SPIDER", "strong")]
    bft = rows[("BFT", "strong")]
    hft = rows[("HFT", "strong")]
    for column in ("V p50", "O p50", "I p50"):
        assert spider[column] < bft[column]
        assert spider[column] < hft[column]
    # The Tokyo crossover from the paper: Spider is not better there.
    assert spider["T p50"] > bft["T p50"] - 20.0
