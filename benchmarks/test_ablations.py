"""Ablation benchmarks for Spider's design choices (beyond the paper's
figures): global flow control ``z``, the IRMC implementation used for the
full system, and the execution checkpoint interval ``k_e``.

These quantify the knobs DESIGN.md calls out rather than reproducing a
specific paper figure.
"""

from repro.core import SpiderConfig
from repro.experiments.common import (
    RunScale,
    build_spider,
    fresh_env,
    measure_latency,
)

REGIONS = ["virginia", "oregon", "ireland", "tokyo"]


def _spider_latency(benchmark, config: SpiderConfig, partition_region=None, seed=1):
    scale = RunScale.quick()

    def once():
        sim, network = fresh_env(seed=seed)
        system = build_spider(sim, network, config=config)
        if partition_region is not None:
            sim.schedule(0.0, network.partition, {partition_region})
        summaries = measure_latency(
            sim, system.make_client, ["virginia"], scale, kinds=["write"]
        )
        return summaries["virginia"]

    return benchmark.pedantic(once, rounds=1, iterations=1)


class TestGlobalFlowControlZ:
    """Section 3.5: with z=1 a dead execution group cannot stall writes."""

    def test_z1_tolerates_unreachable_group(self, benchmark):
        summary = _spider_latency(
            benchmark, SpiderConfig(z=1), partition_region="tokyo"
        )
        print(f"\nz=1 with Tokyo partitioned: {summary}")
        assert summary.count > 3
        assert summary.p50 < 30.0  # Virginia writes unaffected

    def test_z0_stalls_once_commit_window_fills(self, benchmark):
        # Demonstrates the stall that z exists to avoid: with z=0 the
        # agreement group waits for all groups, so a partitioned group
        # eventually blocks everyone.
        def once():
            sim, network = fresh_env(seed=2)
            config = SpiderConfig(z=0, commit_capacity=16, ke=8, ka=8, ag_window=16)
            system = build_spider(sim, network, config=config)
            sim.schedule(0.0, network.partition, {"tokyo"})
            client = system.make_client("c", "virginia", group_id="virginia")
            completed = []

            def issue(index=0):
                if index >= 40:
                    return
                client.write(("put", f"k{index}", index)).add_callback(
                    lambda _: (completed.append(index), issue(index + 1))
                )

            issue()
            sim.run(until=120_000.0)
            return completed

        completed = benchmark.pedantic(once, rounds=1, iterations=1)
        print(f"\nz=0 with Tokyo partitioned: {len(completed)}/40 writes completed")
        assert len(completed) < 40


class TestSystemLevelIrmcChoice:
    """RC vs SC as the system's channel: latency is nearly identical (the
    extra LAN share round is cheap); WAN volume differs substantially."""

    def test_rc_vs_sc_full_system(self, benchmark):
        results = {}

        def once():
            for kind in ("rc", "sc"):
                sim, network = fresh_env(seed=3)
                system = build_spider(
                    sim, network, config=SpiderConfig(irmc_kind=kind)
                )
                summaries = measure_latency(
                    sim,
                    system.make_client,
                    ["virginia", "tokyo"],
                    RunScale.quick(),
                    kinds=["write"],
                )
                results[kind] = {
                    "latency": summaries["tokyo"].p50,
                    "wan_bytes": network.wan.bytes,
                }
            return results

        outcome = benchmark.pedantic(once, rounds=1, iterations=1)
        print(f"\nrc vs sc: {outcome}")
        assert abs(outcome["rc"]["latency"] - outcome["sc"]["latency"]) < 40.0
        assert outcome["sc"]["wan_bytes"] < outcome["rc"]["wan_bytes"]


class TestCheckpointIntervalKe:
    """Smaller k_e means more frequent checkpoints: more overhead messages
    but a shorter commit-channel window requirement."""

    def test_ke_sweep(self, benchmark):
        def once():
            observed = {}
            for ke in (4, 32):
                sim, network = fresh_env(seed=4)
                config = SpiderConfig(ke=ke, ka=max(4, ke), ag_window=64)
                system = build_spider(sim, network, config=config)
                summaries = measure_latency(
                    sim,
                    system.make_client,
                    ["virginia"],
                    RunScale.quick(),
                    kinds=["write"],
                )
                checkpoints = sum(
                    replica.cp.stable_count
                    for group in system.groups.values()
                    for replica in group.replicas
                )
                observed[ke] = {
                    "p50": summaries["virginia"].p50,
                    "stable_checkpoints": checkpoints,
                }
            return observed

        outcome = benchmark.pedantic(once, rounds=1, iterations=1)
        print(f"\nke sweep: {outcome}")
        # Checkpointing more often produces more stable checkpoints without
        # hurting client latency (it is off the critical path).
        assert outcome[4]["stable_checkpoints"] > outcome[32]["stable_checkpoints"]
        assert abs(outcome[4]["p50"] - outcome[32]["p50"]) < 15.0
