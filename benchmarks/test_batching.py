"""Batch-size sweep on the Fig. 7-style write workload.

Request batching amortises one agreement round plus one commit-channel
``Execute`` per execution group over up to ``batch_size`` requests, so a
CPU-saturated agreement group sustains far higher write throughput.  The
sweep drives closed-loop clients in all four regions (writes only, zero
think time) with the crypto cost model scaled up so the agreement replicas
saturate at a population the simulator handles quickly.

Recorded results (seed 7, 8 clients/region, costs x10, 6 s runs):

    batch_size   1:   ~88 writes/s   p50 ~343 ms   (per-seq cost bound)
    batch_size   4:  ~247 writes/s   p50 ~114 ms
    batch_size  16:  ~267 writes/s   p50 ~118 ms   (offered-load bound)

i.e. ~3x at batch_size=16 vs the unbatched protocol, with latency dropping
as queueing at the saturated replicas disappears.  ``batch_size=1`` is the
default and leaves every other benchmark's results unchanged (bit-for-bit
with the pre-batching protocol).
"""

from repro.core import SpiderConfig
from repro.crypto.costs import CostModel, use_cost_model
from repro.experiments.common import REGIONS, build_spider, fresh_env
from repro.metrics import summarize
from repro.workload import drive_clients

DURATION_MS = 6_000.0
WARMUP_MS = 1_000.0
CLIENTS_PER_REGION = 8
COST_SCALE = 10.0
BATCH_SIZES = (1, 4, 16)


def _run(batch_size, seed=7):
    with use_cost_model(CostModel().scaled(COST_SCALE)):
        sim, network = fresh_env(seed=seed)
        config = SpiderConfig(batch_size=batch_size, batch_timeout_ms=20.0)
        system = build_spider(sim, network, config=config)
        clients = []
        for region in REGIONS:
            for index in range(CLIENTS_PER_REGION):
                clients.append(system.make_client(f"c-{region}-{index}", region))
        drive_clients(sim, clients, think_ms=0.0, duration_ms=DURATION_MS)
        sim.run(until=DURATION_MS + 20_000.0)
        samples = [s for c in clients for s in c.completed]
        summary = summarize(samples, kind="write", after_ms=WARMUP_MS)
        window_s = (DURATION_MS - WARMUP_MS) / 1000.0
        batches = sum(r.ag.batches_cut for r in system.agreement_replicas)
        return {
            "ops_per_s": summary.count / window_s,
            "p50_ms": summary.p50,
            "batches_cut": batches,
        }


class TestBatchingSweep:
    def test_throughput_scales_with_batch_size(self, benchmark):
        def once():
            return {size: _run(size) for size in BATCH_SIZES}

        results = benchmark.pedantic(once, rounds=1, iterations=1)
        print()
        for size, metrics in results.items():
            print(
                f"  batch_size {size:3d}: {metrics['ops_per_s']:7.1f} writes/s  "
                f"p50 {metrics['p50_ms']:7.1f} ms"
            )
        # The tentpole claim: batching at least doubles saturated write
        # throughput on the Fig. 7-style workload.
        assert results[16]["ops_per_s"] >= 2.0 * results[1]["ops_per_s"]
        # The curve is monotone: a medium batch already helps.
        assert results[4]["ops_per_s"] > results[1]["ops_per_s"]
        # Batching actually happened (adaptive cut produced real batches).
        assert results[16]["batches_cut"] > 0
        # And it relieves queueing at the saturated agreement group rather
        # than trading throughput for latency.
        assert results[16]["p50_ms"] < results[1]["p50_ms"]
