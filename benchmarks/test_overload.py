"""Overload smoke: flash crowd vs the session middleware chain.

The traffic-shaping story in one A/B run: a 2-shard cluster (costs x10,
so each agreement group saturates around ~250 writes/s) is offered the
*same* precomputed open-loop arrival schedule twice — Zipfian-hot keys,
a steady baseline phase, then a flash-crowd window at roughly 4x the
cluster's write saturation rate.

* **baseline** — no middleware.  The open-loop backlog has nowhere to
  go: session queues grow without bound for the length of the flash and
  write latency climbs into the multi-second range.
* **armed** — slo-metrics + admission + rate-limit + read-cache.  The
  admission gate bounds queued-plus-in-flight work per shard, the token
  bucket clips per-session bursts, and the read cache absorbs the
  Zipfian-hot weak reads.  Excess load is shed *synchronously* as
  ``Rejected`` instead of queueing, so admitted writes keep a bounded
  p99 through the flash, and the SLO counters reconcile exactly:
  ``offered == completed + served + shed``.

Results go to ``benchmarks/BENCH_overload.json`` (uploaded by the
perf-smoke CI job).  Recorded results (seed 11, flash window 2.0-3.5 s
at 4000 ops/s offered, ~6900 ops total):

    baseline: flash-window write p99 ~8200 ms, peak backlog ~2500 ops
    armed:    flash-window write p99  ~410 ms, peak backlog    64 ops
              (= 2 shards x admission depth 32), ~2300 ops shed as
              ``Rejected(overload)``, ~1460 hot reads served from the
              cache, and offered == completed + served + shed exactly

Run directly for the table::

    PYTHONPATH=src python benchmarks/test_overload.py
"""

from __future__ import annotations

import json
import pathlib
import random

from repro.core import SpiderConfig
from repro.crypto.costs import CostModel, use_cost_model
from repro.deploy import ClusterSpec, GroupSpec, MiddlewareSpec, ShardSpec, build
from repro.experiments.common import fresh_env
from repro.metrics import summarize
from repro.workload import ZipfianKeys, flash_crowd, open_loop_plan

SEED = 11
OUTPUT_PATH = pathlib.Path(__file__).parent / "BENCH_overload.json"

COST_SCALE = 10.0
N_SHARDS = 2
SESSIONS = 24
N_KEYS = 32
ZIPF_SKEW = 0.99
WRITE_FRACTION = 0.5

# Two shards saturate around ~500 writes/s at costs x10 (see the
# sharding benchmark); at a 50% write mix that is ~1000 ops/s, so the
# flash window offers ~4x saturation.
BASE_RATE = 240.0  # ops/s, comfortably below saturation
FLASH_RATE = 4_000.0  # ops/s, ~4x the saturated write throughput
FLASH_START_MS = 2_000.0
FLASH_END_MS = 3_500.0
DURATION_MS = 5_000.0
DRAIN_MS = 40_000.0
PROBE_MS = 50.0

ARMED_CHAIN = (
    MiddlewareSpec.of("slo-metrics"),
    MiddlewareSpec.of("admission", depth=32),
    MiddlewareSpec.of("rate-limit", rate=150.0, burst=30.0),
    MiddlewareSpec.of("read-cache", lease_ms=300.0),
)


def overload_spec(middleware) -> ClusterSpec:
    return ClusterSpec(
        shards=tuple(
            ShardSpec(f"s{index}", groups=(GroupSpec(f"g{index}", "virginia"),))
            for index in range(N_SHARDS)
        ),
        config=SpiderConfig(),
        middleware=tuple(middleware),
    )


def make_plan(seed: int = SEED):
    """One deterministic arrival schedule, replayed against both clusters."""
    # lint: allow[D103] -- the plan seed is this benchmark's namespace
    # root; re-tagging it would move the committed BENCH_overload.json
    rng = random.Random(seed)
    keys = ZipfianKeys(N_KEYS, skew=ZIPF_SKEW)
    rate_of = flash_crowd(BASE_RATE, FLASH_RATE, FLASH_START_MS, FLASH_END_MS)

    def describe(r):
        kind = "write" if r.random() < WRITE_FRACTION else "weak-read"
        return (r.randrange(SESSIONS), kind, keys.sample(r))

    return open_loop_plan(rng, DURATION_MS, rate_of, describe)


def run_overload(plan, middleware, seed: int = SEED) -> dict:
    with use_cost_model(CostModel().scaled(COST_SCALE)):
        sim, network = fresh_env(seed=seed, jitter=0.0)
        cluster = build(sim, overload_spec(middleware), network=network)
        sessions = [cluster.session(f"u{index}", "virginia") for index in range(SESSIONS)]

        def fire(descriptor):
            session_index, kind, key = descriptor
            session = sessions[session_index]
            if kind == "write":
                session.write(key, sim.now)
            else:
                session.read(key)

        for arrival_ms, descriptor in plan:
            sim.schedule_at(arrival_ms, fire, descriptor)

        peak_backlog = [0]

        def probe():
            backlog = sum(session.pending_ops for session in sessions)
            if backlog > peak_backlog[0]:
                peak_backlog[0] = backlog
            if sim.now < DURATION_MS:
                sim.schedule_at(sim.now + PROBE_MS, probe)

        sim.schedule_at(0.0, probe)
        sim.run(until=DURATION_MS + DRAIN_MS)

        samples = [sample for s in sessions for sample in s.completed]
        writes = [(kind, issued, latency) for kind, _key, issued, latency in samples]
        flash = summarize(
            writes, kind="write", after_ms=FLASH_START_MS, before_ms=FLASH_END_MS
        )
        overall = summarize(writes, kind="write")
        result = {
            "middleware": [spec.name for spec in middleware],
            "writes_completed": overall.count,
            "write_p50_ms": round(overall.p50, 1),
            "write_p99_ms": round(overall.p99, 1),
            "flash_write_p99_ms": round(flash.p99, 1),
            "peak_backlog": peak_backlog[0],
            "events": sim.events_processed,
        }
        if cluster.has_middleware:
            snap = cluster.middleware_instance("slo-metrics").snapshot()
            result["slo"] = {
                "offered": snap["offered"],
                "completed": snap["completed"],
                "served": snap["served"],
                "shed": snap["shed"],
                "max_inflight": snap["max_inflight"],
            }
        return result


def run_all(seed: int = SEED) -> dict:
    plan = make_plan(seed)
    baseline = run_overload(plan, (), seed)
    armed = run_overload(plan, ARMED_CHAIN, seed)
    return {
        "benchmark": "overload",
        "seed": seed,
        "sessions": SESSIONS,
        "cost_scale": COST_SCALE,
        "offered_ops": len(plan),
        "base_rate_ops_s": BASE_RATE,
        "flash_rate_ops_s": FLASH_RATE,
        "flash_window_ms": [FLASH_START_MS, FLASH_END_MS],
        "baseline": baseline,
        "armed": armed,
    }


def test_middleware_bounds_overload(benchmark):
    report = benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline, armed = report["baseline"], report["armed"]
    print()
    for label, stats in (("baseline", baseline), ("armed", armed)):
        print(
            f"  {label:8s}: flash write p99 {stats['flash_write_p99_ms']:8.1f} ms  "
            f"peak backlog {stats['peak_backlog']:5d}"
        )
    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    # The accounting identity is exact: every offered op either completed,
    # was served locally (cache), or was shed with a reason.
    slo = armed["slo"]
    offered = sum(slo["offered"].values())
    completed = sum(slo["completed"].values())
    served = sum(slo["served"].values())
    shed = sum(slo["shed"].values())
    assert offered == report["offered_ops"]
    assert offered == completed + served + shed
    # The flash actually overloaded the cluster and the chain responded:
    # load was shed and the Zipfian-hot reads hit the cache.
    assert shed > 0
    assert served > 0

    # The headline: with the chain armed, admitted writes keep a bounded
    # p99 through the flash window; the unprotected baseline's open-loop
    # backlog drives p99 several times higher (multi-second queueing).
    assert armed["flash_write_p99_ms"] < 1_500.0
    assert baseline["flash_write_p99_ms"] >= 3.0 * armed["flash_write_p99_ms"]
    # And the queue growth itself is bounded by the admission depth
    # (per shard) instead of tracking the offered backlog.
    assert baseline["peak_backlog"] >= 5 * armed["peak_backlog"]


if __name__ == "__main__":  # pragma: no cover
    report = run_all()
    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
