"""Overload smoke: flash crowd vs the session middleware chain.

The traffic-shaping story in one A/B run: a 2-shard cluster (costs x10,
so each agreement group saturates around ~250 writes/s) is offered the
*same* precomputed open-loop arrival schedule twice — Zipfian-hot keys,
a steady baseline phase, then a flash-crowd window at roughly 4x the
cluster's write saturation rate.

* **baseline** — no middleware.  The open-loop backlog has nowhere to
  go: session queues grow without bound for the length of the flash and
  write latency climbs into the multi-second range.
* **armed** — slo-metrics + admission + rate-limit + read-cache.  The
  admission gate bounds queued-plus-in-flight work per shard, the token
  bucket clips per-session bursts, and the read cache absorbs the
  Zipfian-hot weak reads.  Excess load is shed *synchronously* as
  ``Rejected`` instead of queueing, so admitted writes keep a bounded
  p99 through the flash, and the SLO counters reconcile exactly:
  ``offered == completed + served + shed``.

Both arms are thin :class:`~repro.scenarios.ScenarioSpec` definitions
executed by the ``overload`` stack; they share one ``flash-plan``
workload fragment, so the precomputed arrival schedule is built once and
reused from the fingerprint cache — the A/B comparison sees
byte-identical offered load *by construction*, and the cache's hit
counter proves it.

Results go to ``benchmarks/BENCH_overload.json`` (uploaded by the
perf-smoke CI job).  Recorded results (seed 11, flash window 2.0-3.5 s
at 4000 ops/s offered, ~6900 ops total):

    baseline: flash-window write p99 ~8200 ms, peak backlog ~2500 ops
    armed:    flash-window write p99  ~410 ms, peak backlog    64 ops
              (= 2 shards x admission depth 32), ~2300 ops shed as
              ``Rejected(overload)``, ~1460 hot reads served from the
              cache, and offered == completed + served + shed exactly

Run directly for the table::

    PYTHONPATH=src python benchmarks/test_overload.py
"""

from __future__ import annotations

import json
import pathlib

from repro.scenarios import BuildCache, ScenarioSpec
from repro.scenarios import run as run_scenario

SEED = 11
OUTPUT_PATH = pathlib.Path(__file__).parent / "BENCH_overload.json"

COST_SCALE = 10.0
N_SHARDS = 2
SESSIONS = 24
N_KEYS = 32
ZIPF_SKEW = 0.99
WRITE_FRACTION = 0.5

# Two shards saturate around ~500 writes/s at costs x10 (see the
# sharding benchmark); at a 50% write mix that is ~1000 ops/s, so the
# flash window offers ~4x saturation.
BASE_RATE = 240.0  # ops/s, comfortably below saturation
FLASH_RATE = 4_000.0  # ops/s, ~4x the saturated write throughput
FLASH_START_MS = 2_000.0
FLASH_END_MS = 3_500.0
DURATION_MS = 5_000.0
DRAIN_MS = 40_000.0
PROBE_MS = 50.0

#: the shared workload fragment — same dict in both scenarios, so both
#: arms fingerprint to the same plan and the cache replays it.
WORKLOAD = {
    "kind": "flash-plan",
    "sessions": SESSIONS,
    "n_keys": N_KEYS,
    "skew": ZIPF_SKEW,
    "write_fraction": WRITE_FRACTION,
    "base_rate": BASE_RATE,
    "flash_rate": FLASH_RATE,
    "flash_start_ms": FLASH_START_MS,
    "flash_end_ms": FLASH_END_MS,
    "duration_ms": DURATION_MS,
}

ARMED_MIDDLEWARE = [
    {"name": "slo-metrics"},
    {"name": "admission", "options": {"depth": 32}},
    {"name": "rate-limit", "options": {"rate": 150.0, "burst": 30.0}},
    {"name": "read-cache", "options": {"lease_ms": 300.0}},
]


def overload_scenario(name: str, middleware) -> ScenarioSpec:
    return ScenarioSpec.of(
        name=name,
        stack="overload",
        topology={
            "shards": [
                {
                    "shard_id": f"s{index}",
                    "groups": [{"group_id": f"g{index}", "region": "virginia"}],
                }
                for index in range(N_SHARDS)
            ],
            "config": {},
            "middleware": list(middleware),
        },
        workload=WORKLOAD,
        scale={"cost_scale": COST_SCALE, "drain_ms": DRAIN_MS, "probe_ms": PROBE_MS},
    )


def run_all(seed: int = SEED, cache: BuildCache = None) -> dict:
    cache = cache if cache is not None else BuildCache()
    baseline = run_scenario(overload_scenario("overload-baseline", ()), seed, cache)
    armed = run_scenario(
        overload_scenario("overload-armed", ARMED_MIDDLEWARE), seed, cache
    )
    offered_ops = baseline.pop("offered_ops")
    assert armed.pop("offered_ops") == offered_ops
    return {
        "benchmark": "overload",
        "seed": seed,
        "sessions": SESSIONS,
        "cost_scale": COST_SCALE,
        "offered_ops": offered_ops,
        "base_rate_ops_s": BASE_RATE,
        "flash_rate_ops_s": FLASH_RATE,
        "flash_window_ms": [FLASH_START_MS, FLASH_END_MS],
        "baseline": baseline,
        "armed": armed,
    }


def test_middleware_bounds_overload(benchmark):
    cache = BuildCache()
    report = benchmark.pedantic(run_all, args=(SEED, cache), rounds=1, iterations=1)
    baseline, armed = report["baseline"], report["armed"]
    print()
    for label, stats in (("baseline", baseline), ("armed", armed)):
        print(
            f"  {label:8s}: flash write p99 {stats['flash_write_p99_ms']:8.1f} ms  "
            f"peak backlog {stats['peak_backlog']:5d}"
        )
    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    # Both arms share one workload fragment: the armed run replays the
    # baseline's plan straight from the fingerprint cache.
    assert cache.stats()["hits"] >= 1, cache.stats()

    # The accounting identity is exact: every offered op either completed,
    # was served locally (cache), or was shed with a reason.
    slo = armed["slo"]
    offered = sum(slo["offered"].values())
    completed = sum(slo["completed"].values())
    served = sum(slo["served"].values())
    shed = sum(slo["shed"].values())
    assert offered == report["offered_ops"]
    assert offered == completed + served + shed
    # The flash actually overloaded the cluster and the chain responded:
    # load was shed and the Zipfian-hot reads hit the cache.
    assert shed > 0
    assert served > 0

    # The headline: with the chain armed, admitted writes keep a bounded
    # p99 through the flash window; the unprotected baseline's open-loop
    # backlog drives p99 several times higher (multi-second queueing).
    assert armed["flash_write_p99_ms"] < 1_500.0
    assert baseline["flash_write_p99_ms"] >= 3.0 * armed["flash_write_p99_ms"]
    # And the queue growth itself is bounded by the admission depth
    # (per shard) instead of tracking the offered backlog.
    assert baseline["peak_backlog"] >= 5 * armed["peak_backlog"]


if __name__ == "__main__":  # pragma: no cover
    report = run_all()
    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
