"""Benchmark regenerating Fig. 7 (write latency by client/leader location)."""

from repro.experiments.fig7_writes import run


def test_fig7_writes(experiment):
    result = experiment(run)
    rows = {(row["system"], row["leader"]): row for row in result.rows}

    spider_v1 = rows[("SPIDER", "V-1")]
    bft_v = rows[("BFT", "V")]
    hft_v = rows[("HFT", "V")]

    # Spider beats BFT and HFT at every client location (paper: up to 95%).
    for column in ("V p50", "O p50", "I p50", "T p50"):
        assert spider_v1[column] < bft_v[column]
        assert spider_v1[column] < hft_v[column]

    # Virginia clients see local-only latency in Spider (paper: ~13 ms).
    assert spider_v1["V p50"] < 25.0
    # ... and a >80% reduction vs BFT with the same leader region.
    assert spider_v1["V p50"] < 0.2 * bft_v["V p50"]

    # Spider is insensitive to the agreement leader's availability zone.
    spider_v2 = rows[("SPIDER", "V-2")]
    for column in ("V p50", "O p50", "I p50", "T p50"):
        assert abs(spider_v1[column] - spider_v2[column]) < 10.0

    # BFT/HFT latency depends strongly on the leader location.
    bft_t = rows[("BFT", "T")]
    assert bft_t["V p50"] > bft_v["V p50"] + 50.0
