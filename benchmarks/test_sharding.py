"""Sharded-throughput smoke: aggregate writes/s vs shard count.

The first scale-out benchmark of the declarative deployment API: a fixed
population of write-only sessions drives clusters of 1, 2 and 4 shards
(each shard a complete agreement domain: 4 agreement replicas + one
3-replica execution group, all in Virginia).  Keys pin each session to
one shard via the cluster's deterministic partitioner, so the load
splits evenly.  The crypto cost model is scaled x10 so a single
agreement group saturates at a population the simulator handles quickly
— exactly the batching benchmark's setup — which makes the shard count
the bottleneck under test: N independent agreement groups should order
roughly N times the writes of one.

Results are written to ``benchmarks/BENCH_sharding.json`` (the perf-smoke
CI job uploads it) to start the sharding perf trajectory.

Recorded results (seed 9, 32 sessions, costs x10, 6 s runs):

    1 shard:   ~246 writes/s   p50 ~129 ms   (agreement CPU bound)
    2 shards:  ~494 writes/s   p50  ~65 ms   (~2.0x)
    4 shards:  ~986 writes/s   p50  ~33 ms   (~4.0x)

i.e. aggregate write throughput scales linearly with the shard count
while per-op latency *drops* (queueing at the saturated agreement group
disappears) — independent agreement groups are a clean scale-out axis.

Run directly for the table::

    PYTHONPATH=src python benchmarks/test_sharding.py
"""

from __future__ import annotations

import json
import pathlib

from repro.crypto.costs import CostModel, use_cost_model
from repro.deploy import ClusterSpec, GroupSpec, ShardSpec, build
from repro.experiments.common import fresh_env
from repro.metrics import summarize

SEED = 9
OUTPUT_PATH = pathlib.Path(__file__).parent / "BENCH_sharding.json"

SHARD_COUNTS = (1, 2, 4)
SESSIONS_TOTAL = 32
COST_SCALE = 10.0
DURATION_MS = 6_000.0
WARMUP_MS = 1_000.0


def sharded_spec(n_shards: int) -> ClusterSpec:
    return ClusterSpec(
        shards=tuple(
            ShardSpec(f"s{index}", groups=(GroupSpec(f"g{index}", "virginia"),))
            for index in range(n_shards)
        )
    )


def run_shard_count(n_shards: int, seed: int = SEED) -> dict:
    with use_cost_model(CostModel().scaled(COST_SCALE)):
        sim, network = fresh_env(seed=seed, jitter=0.0)
        cluster = build(sim, sharded_spec(n_shards), network=network)
        shard_ids = cluster.spec.shard_ids()
        sessions = []
        session_key = {}
        per_shard = {sid: 0 for sid in shard_ids}
        for index in range(SESSIONS_TOTAL):
            shard_id = shard_ids[index % n_shards]
            session = cluster.session(f"u{index}", "virginia")
            # One dedicated key per session, owned by its designated shard.
            key = cluster.partitioner.keys_for(
                shard_id, per_shard[shard_id] + 1, prefix=f"{shard_id}:k"
            )[-1]
            per_shard[shard_id] += 1
            sessions.append(session)
            session_key[session.name] = key

        def issue(session):
            if sim.now >= DURATION_MS:
                return
            future = session.write(session_key[session.name], sim.now)
            future.add_callback(lambda _result: issue(session))

        for session in sessions:
            sim.schedule_at(0.0, issue, session)
        sim.run(until=DURATION_MS + 20_000.0)

        samples = [sample for s in sessions for sample in s.completed]
        summary = summarize(
            [(kind, issued, latency) for kind, _key, issued, latency in samples],
            kind="write",
            after_ms=WARMUP_MS,
        )
        window_s = (DURATION_MS - WARMUP_MS) / 1000.0
        return {
            "shards": n_shards,
            "writes_per_s": round(summary.count / window_s, 1),
            "p50_ms": round(summary.p50, 1),
            "events": sim.events_processed,
        }


def run_all(seed: int = SEED) -> dict:
    results = {n: run_shard_count(n, seed) for n in SHARD_COUNTS}
    return {
        "benchmark": "sharding",
        "seed": seed,
        "sessions": SESSIONS_TOTAL,
        "cost_scale": COST_SCALE,
        "results": {str(n): stats for n, stats in results.items()},
    }


def test_write_throughput_scales_with_shard_count(benchmark):
    report = benchmark.pedantic(run_all, rounds=1, iterations=1)
    results = {int(n): stats for n, stats in report["results"].items()}
    print()
    for n, stats in sorted(results.items()):
        print(
            f"  {n} shard(s): {stats['writes_per_s']:7.1f} writes/s  "
            f"p50 {stats['p50_ms']:7.1f} ms"
        )
    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    # The tentpole claim: aggregate write throughput scales with the
    # shard count while one shard is saturated.
    assert results[2]["writes_per_s"] >= 1.5 * results[1]["writes_per_s"]
    assert results[4]["writes_per_s"] >= 2.5 * results[1]["writes_per_s"]
    # The curve is monotone.
    assert results[4]["writes_per_s"] > results[2]["writes_per_s"]
    # And sharding relieves queueing at the saturated agreement group.
    assert results[4]["p50_ms"] < results[1]["p50_ms"]


if __name__ == "__main__":  # pragma: no cover
    report = run_all()
    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
