"""Live resharding smoke: 2 -> 3 shards under sustained open-loop load.

The elastic-keyspace acceptance benchmark: a two-shard cluster (each
shard a complete agreement domain, all in Virginia) is driven past its
saturation point by an open-loop diurnal ramp — offered load climbs
from 600 toward 900 writes/s while the 2-shard plateau sits near 500
writes/s at the x10 crypto cost scale — and mid-climb the cluster
executes ``split_shard``: a third shard is materialised from zero and
``MoveRange`` handovers walk a third of the slot space over to it, one
epoch bump at a time, with traffic still flowing.

Measured: aggregate write throughput before the split (the 2-shard
plateau), during the handover window, and after (the 3-shard
configuration eating into the backlog), plus the wall duration of the
handover itself.  Audited: **exactly once and in order** — every key's
writes return KVStore versions ``1..n`` strictly rising through the
ownership change (a lost transfer would skip a version, a double
execution would repeat one, a reorder would invert two), regardless of
which side of the cut executed each write.

Results are written to ``benchmarks/BENCH_reshard.json`` (the perf-smoke
CI job uploads it).

Recorded results (seed 9, 16 sessions, 48 keys, costs x10, 12 s run,
split at 5 s; the split plan walks five slot ranges over in five
epoch bumps):

    before:  ~493 writes/s   (2 shards, saturated)
    during:  ~599 writes/s   (handover window, traffic still flowing)
    after:   ~629 writes/s   (3 shards eating into the ramp's backlog)
    handover: ~621 ms, epoch 0 -> 5, zero lost/duplicated/reordered

Run directly for the table::

    PYTHONPATH=src python benchmarks/test_reshard.py
"""

from __future__ import annotations

import json
import pathlib
import random

from repro.crypto.costs import CostModel, use_cost_model
from repro.deploy import ClusterSpec, GroupSpec, ShardSpec, build
from repro.experiments.common import fresh_env
from repro.workload.traffic import diurnal_ramp, open_loop_plan

SEED = 9
OUTPUT_PATH = pathlib.Path(__file__).parent / "BENCH_reshard.json"

SESSIONS = 16
KEYS_TOTAL = 48
COST_SCALE = 10.0
DURATION_MS = 12_000.0
WARMUP_MS = 1_000.0
SPLIT_AT_MS = 5_000.0
LOW_RATE = 600.0
HIGH_RATE = 900.0
DRAIN_MS = 30_000.0


def reshard_spec() -> ClusterSpec:
    return ClusterSpec(
        shards=tuple(
            ShardSpec(f"s{index}", groups=(GroupSpec(f"g{index}", "virginia"),))
            for index in range(2)
        )
    )


def build_plan(seed: int = SEED):
    """The offered load, one seeded artifact: Poisson arrivals riding a
    diurnal ramp (low at the edges, peaking mid-run), each naming a key."""
    rng = random.Random(f"reshard:{seed}:plan")
    rate_of = diurnal_ramp(LOW_RATE, HIGH_RATE, DURATION_MS)
    return open_loop_plan(
        rng, DURATION_MS, rate_of, lambda r: r.randrange(KEYS_TOTAL)
    )


def run_reshard(seed: int = SEED) -> dict:
    plan = build_plan(seed)
    with use_cost_model(CostModel().scaled(COST_SCALE)):
        sim, network = fresh_env(seed=seed, jitter=0.0)
        cluster = build(sim, reshard_spec(), network=network)
        sessions = [
            cluster.session(f"u{index}", "virginia") for index in range(SESSIONS)
        ]
        keys = [f"key-{index}" for index in range(KEYS_TOTAL)]
        issued = {key: 0 for key in keys}
        #: per key, (write_index, version, done_ms) in completion order.
        outcomes = {key: [] for key in keys}

        def fire(key_index: int) -> None:
            key = keys[key_index]
            session = sessions[key_index % SESSIONS]
            index = issued[key]
            issued[key] += 1
            future = session.write(key, index)
            future.add_callback(
                lambda result: outcomes[key].append(
                    (index, result[1] if result[0] == "ok" else result, sim.now)
                )
            )

        for arrival_ms, key_index in plan:
            sim.schedule_at(arrival_ms, fire, key_index)

        handover = {"start": None, "end": None}

        def split() -> None:
            handover["start"] = sim.now
            future = cluster.split_shard(
                ShardSpec("s2", groups=(GroupSpec("g2", "virginia"),))
            )
            future.add_callback(
                lambda _map: handover.update(end=sim.now)
            )

        sim.schedule_at(SPLIT_AT_MS, split)
        sim.run(until=DURATION_MS + DRAIN_MS)

        # --------------------------------------------------------------
        # Exactly-once + per-key FIFO audit across the ownership change:
        # each key's completions must carry versions 1..n strictly rising.
        lost = duplicated = reordered = 0
        for key in keys:
            versions = [version for _index, version, _done in outcomes[key]]
            n = issued[key]
            lost += n - len(set(v for v in versions if isinstance(v, int)))
            duplicated += len(versions) - len(set(versions))
            if versions != sorted(set(v for v in versions if isinstance(v, int))):
                reordered += 1

        def window_rate(start_ms: float, end_ms: float) -> float:
            done = sum(
                1
                for key in keys
                for _index, _version, done_ms in outcomes[key]
                if start_ms <= done_ms < end_ms
            )
            return round(done / ((end_ms - start_ms) / 1000.0), 1)

        assert handover["end"] is not None, "split_shard never committed"
        report = {
            "benchmark": "reshard",
            "seed": seed,
            "sessions": SESSIONS,
            "keys": KEYS_TOTAL,
            "cost_scale": COST_SCALE,
            "offered_ops": len(plan),
            "rate_curve": {
                "kind": "diurnal_ramp",
                "low": LOW_RATE,
                "high": HIGH_RATE,
                "period_ms": DURATION_MS,
            },
            "split_at_ms": SPLIT_AT_MS,
            "handover_ms": round(handover["end"] - handover["start"], 3),
            "epoch": cluster.partitioner.epoch,
            "shards_after": len(cluster.spec.shard_ids()),
            "writes_per_s": {
                "before": window_rate(WARMUP_MS, SPLIT_AT_MS),
                "during": window_rate(handover["start"], handover["end"]),
                "after": window_rate(handover["end"], DURATION_MS),
            },
            "audit": {
                "lost": lost,
                "duplicated": duplicated,
                "reordered_keys": reordered,
                "completed": sum(len(v) for v in outcomes.values()),
            },
            "events": sim.events_processed,
        }
        return report


def test_split_shard_under_load(benchmark):
    report = benchmark.pedantic(run_reshard, rounds=1, iterations=1)
    rates = report["writes_per_s"]
    print()
    print(
        f"  before {rates['before']:7.1f} writes/s   during "
        f"{rates['during']:7.1f}   after {rates['after']:7.1f}   "
        f"handover {report['handover_ms']:.1f} ms"
    )
    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    # The handover actually happened: three shards, bumped epochs.
    assert report["shards_after"] == 3
    assert report["epoch"] >= 1
    # Exactly once, in order, across the ownership change.
    assert report["audit"]["lost"] == 0
    assert report["audit"]["duplicated"] == 0
    assert report["audit"]["reordered_keys"] == 0
    assert report["audit"]["completed"] == report["offered_ops"]
    # The payoff: the 3-shard configuration out-runs the 2-shard plateau.
    assert rates["after"] > rates["before"]


if __name__ == "__main__":  # pragma: no cover
    report = run_reshard()
    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
