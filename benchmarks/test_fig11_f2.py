"""Benchmark regenerating Fig. 11 (write latency tolerating f=2)."""

from repro.experiments.fig11_f2 import run


def test_fig11_f2(experiment):
    result = experiment(run)
    rows = {row["system"]: row for row in result.rows}

    # Spider remains clearly below BFT and HFT for every client region.
    for column in ("V p50", "O p50", "I p50", "T p50"):
        assert rows["SPIDER"][column] < rows["HFT"][column]
        assert rows["SPIDER"][column] < rows["BFT"][column]

    # The rise versus f=1 is moderate (paper: up to ~46 ms): Virginia
    # clients now pay for the Ohio members on the agreement quorum path,
    # but stay well under one WAN round trip.
    assert 8.0 < rows["SPIDER"]["V p50"] < 60.0
