"""System-level throughput benchmark (beyond the paper's figures).

Measures completed writes per second for Spider and the BFT baseline as
the closed-loop client population grows, demonstrating that Spider's
throughput scales with execution groups while the flat WAN protocol's
per-request cost dominates BFT.
"""

from repro.experiments.common import REGIONS, build_bft, build_spider, fresh_env
from repro.metrics import summarize
from repro.workload import drive_clients

DURATION_MS = 8_000.0
WARMUP_MS = 1_000.0


def _run(system_builder, clients_per_region, seed=5):
    sim, network = fresh_env(seed=seed)
    system = system_builder(sim, network)
    clients = []
    for region in REGIONS:
        for index in range(clients_per_region):
            clients.append(system.make_client(f"c-{region}-{index}", region))
    drive_clients(sim, clients, think_ms=100.0, duration_ms=DURATION_MS)
    sim.run(until=DURATION_MS + 20_000.0)
    samples = [s for c in clients for s in c.completed]
    summary = summarize(samples, kind="write", after_ms=WARMUP_MS)
    window_s = (DURATION_MS - WARMUP_MS) / 1000.0
    return {
        "ops_per_s": summary.count / window_s,
        "p50_ms": summary.p50,
        "clients": len(clients),
    }


class TestSystemThroughput:
    def test_spider_vs_bft_scaling(self, benchmark):
        def once():
            results = {}
            for label, builder in (("SPIDER", build_spider), ("BFT", build_bft)):
                results[label] = {
                    n: _run(builder, n) for n in (1, 3)
                }
            return results

        results = benchmark.pedantic(once, rounds=1, iterations=1)
        print()
        for label, by_population in results.items():
            for n, metrics in by_population.items():
                print(
                    f"  {label:7s} {metrics['clients']:2d} clients: "
                    f"{metrics['ops_per_s']:7.1f} writes/s  "
                    f"p50 {metrics['p50_ms']:6.1f} ms"
                )
        # Closed-loop throughput = population / (latency + think): Spider's
        # far lower latency yields far higher completed-write rates.
        for n in (1, 3):
            assert (
                results["SPIDER"][n]["ops_per_s"]
                > 1.5 * results["BFT"][n]["ops_per_s"]
            )
        # And Spider's rate grows with the client population.
        assert (
            results["SPIDER"][3]["ops_per_s"]
            > 2.0 * results["SPIDER"][1]["ops_per_s"]
        )
        # Latency stays flat while load triples (no saturation).
        assert results["SPIDER"][3]["p50_ms"] < 2 * results["SPIDER"][1]["p50_ms"]
