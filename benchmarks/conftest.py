"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures at reduced
scale (``quick=True``), prints the table, and asserts the *shape* the paper
reports (who wins, roughly by how much, where crossovers fall).  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


import pathlib

BENCH_DIR = pathlib.Path(__file__).parent.resolve()


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ so CI can deselect it with
    ``-m "not bench"`` (the tier-1 suite) while a dedicated job runs a
    fast smoke of the benchmarks.  The hook sees the whole session's
    items, so filter to this directory explicitly."""
    for item in items:
        if BENCH_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)


def run_experiment(benchmark, run_fn, **kwargs):
    """Execute an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(lambda: run_fn(quick=True, **kwargs), rounds=1, iterations=1)


@pytest.fixture
def experiment(benchmark):
    def _run(run_fn, **kwargs):
        result = run_experiment(benchmark, run_fn, **kwargs)
        print()
        print(result.format())
        return result

    return _run
