"""Chaos campaign sweep: the declarative suite against every stack.

Acceptance sweep for the chaos subsystem, driven by the committed
``suites/chaos.yaml``: >= 50 seeds spread across the fourteen stack
configurations (full Spider, PBFT-only, Raft-only, IRMC-RC, IRMC-SC,
the targeted recovery stacks ``pbft-vc-crash`` and ``spider-cp-crash``,
the two-shard isolation stack ``spider-shard``, the live-resharding
stack ``spider-reshard`` (crash/wipe/partition across a range
handover, audited by the ``reshard-handover`` cross-cut invariant),
and the adversary-and-environment palette stacks ``pbft-wipe``,
``raft-skew``, ``spider-disk``, ``irmc-equivocate`` and
``irmc-sc-wipe`` — durable-state loss, checkpoint corruption, clock
skew and authenticated equivocation), every safety and liveness
invariant green — crash/
recovered replicas owe completion-after-heal and wiped replicas owe the
exact recovered frontier — plus the byte-parity guarantees that (a) a
no-fault campaign run is indistinguishable from the same workload
without the chaos layer loaded and (b) every suite cell is
byte-identical to the historical hand-wired ``get_harness(config)``
sweep it replaced.

Any failure is shrunk to a minimal schedule and written to
``benchmarks/CHAOS_failures.json`` (CI uploads it as an artifact); the
printed snippet is ready to be checked in as a regression test in
``tests/test_chaos_regressions.py``.

Run directly for the sweep table::

    PYTHONPATH=src python -m pytest -q benchmarks/test_chaos.py
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.chaos import get_harness, repro_snippet, shrink_schedule
from repro.chaos.actions import FaultAction
from repro.scenarios import BuildCache, load_suite, run_matrix

FAILURES_PATH = pathlib.Path(__file__).parent / "CHAOS_failures.json"
SUITE_PATH = pathlib.Path(__file__).parent.parent / "suites" / "chaos.yaml"

#: loaded (and fully validated) once per process — configuration
#: mistakes in the suite file fail collection, before any node exists.
SUITE = load_suite(SUITE_PATH)

#: one shared build cache across the whole sweep: each config's harness
#: is built once and reused for all of its seeds.
CACHE = BuildCache()

SEEDS_PER_CONFIG = len(SUITE.seeds)
SEED_BASE = SUITE.seeds[0]
CONFIGS = sorted(spec.name for spec in SUITE.scenarios)


@pytest.fixture(autouse=True, scope="module")
def _fresh_failure_artifact():
    """Drop any stale artifact so a green run leaves no file behind and a
    failing run's report contains only this run's schedules."""
    if FAILURES_PATH.exists():
        FAILURES_PATH.unlink()
    yield


def _sweep_config(config: str):
    spec = SUITE.scenario(config)
    cells = run_matrix([spec], SUITE.seeds, CACHE)
    failures = []
    actions_total = 0
    for cell in cells:
        if cell.error is not None:
            failures.append(
                {"config": config, "seed": cell.seed, "error": cell.error}
            )
            continue
        actions_total += cell.stats["n_actions"]
        if not cell.ok:
            harness = get_harness(config)
            actions = [FaultAction(**a) for a in cell.stats["schedule"]]
            minimal = shrink_schedule(harness, cell.seed, actions=actions)
            failures.append(
                {
                    "config": config,
                    "seed": cell.seed,
                    "fingerprint": cell.fingerprint,
                    "violations": cell.stats["violations"],
                    "schedule": cell.stats["schedule"],
                    "minimized": [dict(vars(a)) for a in minimal],
                    "snippet": repro_snippet(harness, cell.seed, minimal),
                }
            )
    return actions_total, failures


@pytest.mark.parametrize("config", CONFIGS)
def test_campaign_sweep(config):
    actions_total, failures = _sweep_config(config)
    if failures:
        existing = []
        if FAILURES_PATH.exists():
            existing = json.loads(FAILURES_PATH.read_text())
        FAILURES_PATH.write_text(json.dumps(existing + failures, indent=2, default=repr))
        detail = "\n\n".join(f.get("snippet", f.get("error", "")) for f in failures)
        pytest.fail(
            f"{config}: {len(failures)}/{SEEDS_PER_CONFIG} seeds violated "
            f"invariants; minimized repros in {FAILURES_PATH}:\n{detail}"
        )
    # The sweep must actually inject faults — an accidentally empty
    # palette would make the invariants vacuously green.
    assert actions_total >= SEEDS_PER_CONFIG, (
        f"{config}: only {actions_total} fault actions over "
        f"{SEEDS_PER_CONFIG} seeds — campaign is not exercising faults"
    )


@pytest.mark.parametrize("config", CONFIGS)
def test_suite_cell_matches_handwired_harness(config):
    """Migration guarantee: the declarative cell == the historical path."""
    spec = SUITE.scenario(config)
    [cell] = run_matrix([spec], [SEED_BASE], CACHE)
    reference = get_harness(config).run(SEED_BASE)
    assert cell.error is None, cell.error
    assert cell.stats["campaign_fingerprint"] == reference.fingerprint()
    assert cell.stats["violations"] == list(reference.violations)
    assert cell.stats["n_actions"] == len(reference.actions)


def test_suite_cache_reuses_builds():
    """The suite runner demonstrably reuses cached constructions."""
    cache = BuildCache()
    spec = SUITE.scenario("pbft")
    run_matrix([spec], SUITE.seeds[:2], cache)
    # Second seed reuses the harness and the compiled invariant set.
    assert cache.stats()["hits"] >= 2
    # And the module-level sweep cache saw heavy reuse too (when the
    # sweep ran first; harmless when this test runs in isolation).
    assert CACHE.stats()["hits"] >= 0


@pytest.mark.parametrize("config", CONFIGS)
def test_no_fault_campaign_is_byte_identical(config):
    """Chaos layer armed with zero faults == chaos layer absent."""
    harness = get_harness(config)
    wrapped = harness.run(SEED_BASE, actions=[])
    bare = harness.run(SEED_BASE, actions=[], chaos=False)
    assert wrapped.ok and bare.ok
    assert wrapped.stats == bare.stats
    assert wrapped.fingerprint() == bare.fingerprint()


def main() -> None:  # pragma: no cover - manual entry point
    for config in CONFIGS:
        actions_total, failures = _sweep_config(config)
        status = "ok" if not failures else f"{len(failures)} FAILURES"
        print(
            f"{config:8s} seeds={SEEDS_PER_CONFIG} actions={actions_total} {status}"
        )
        for failure in failures:
            print(failure.get("snippet", failure.get("error", "")))
    print("cache:", CACHE.stats())


if __name__ == "__main__":  # pragma: no cover
    main()
