"""Chaos campaign sweep: seeded fault schedules against every stack.

Acceptance sweep for the chaos subsystem: >= 50 seeds spread across the
thirteen stack configurations (full Spider, PBFT-only, Raft-only,
IRMC-RC, IRMC-SC, the targeted recovery stacks ``pbft-vc-crash`` and
``spider-cp-crash``, the two-shard isolation stack ``spider-shard``,
and the adversary-and-environment palette stacks ``pbft-wipe``,
``raft-skew``, ``spider-disk``, ``irmc-equivocate`` and
``irmc-sc-wipe`` — durable-state loss, checkpoint corruption, clock
skew and authenticated equivocation), every safety and liveness
invariant green — crash/recovered replicas owe completion-after-heal
and wiped replicas owe the exact recovered frontier — plus the
byte-parity guarantee that a no-fault campaign run is indistinguishable
from the same workload without the chaos layer loaded.

Any failure is shrunk to a minimal schedule and written to
``benchmarks/CHAOS_failures.json`` (CI uploads it as an artifact); the
printed snippet is ready to be checked in as a regression test in
``tests/test_chaos_regressions.py``.

Run directly for the sweep table::

    PYTHONPATH=src python -m pytest -q benchmarks/test_chaos.py
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.chaos import HARNESSES, get_harness, repro_snippet, shrink_schedule

FAILURES_PATH = pathlib.Path(__file__).parent / "CHAOS_failures.json"


@pytest.fixture(autouse=True, scope="module")
def _fresh_failure_artifact():
    """Drop any stale artifact so a green run leaves no file behind and a
    failing run's report contains only this run's schedules."""
    if FAILURES_PATH.exists():
        FAILURES_PATH.unlink()
    yield

#: seeds per configuration; 13 configs x 12 = 156 cases >= the 50 floor.
SEEDS_PER_CONFIG = 12
SEED_BASE = 1


def _sweep_config(config: str):
    harness = get_harness(config)
    failures = []
    actions_total = 0
    for seed in range(SEED_BASE, SEED_BASE + SEEDS_PER_CONFIG):
        result = harness.run(seed)
        actions_total += len(result.actions)
        if not result.ok:
            minimal = shrink_schedule(harness, seed, actions=result.actions)
            failures.append(
                {
                    "config": config,
                    "seed": seed,
                    "violations": result.violations,
                    "schedule": [dict(vars(a)) for a in result.actions],
                    "minimized": [dict(vars(a)) for a in minimal],
                    "snippet": repro_snippet(harness, seed, minimal),
                }
            )
    return actions_total, failures


@pytest.mark.parametrize("config", sorted(HARNESSES))
def test_campaign_sweep(config):
    actions_total, failures = _sweep_config(config)
    if failures:
        existing = []
        if FAILURES_PATH.exists():
            existing = json.loads(FAILURES_PATH.read_text())
        FAILURES_PATH.write_text(json.dumps(existing + failures, indent=2, default=repr))
        detail = "\n\n".join(f["snippet"] for f in failures)
        pytest.fail(
            f"{config}: {len(failures)}/{SEEDS_PER_CONFIG} seeds violated "
            f"invariants; minimized repros in {FAILURES_PATH}:\n{detail}"
        )
    # The sweep must actually inject faults — an accidentally empty
    # palette would make the invariants vacuously green.
    assert actions_total >= SEEDS_PER_CONFIG, (
        f"{config}: only {actions_total} fault actions over "
        f"{SEEDS_PER_CONFIG} seeds — campaign is not exercising faults"
    )


@pytest.mark.parametrize("config", sorted(HARNESSES))
def test_no_fault_campaign_is_byte_identical(config):
    """Chaos layer armed with zero faults == chaos layer absent."""
    harness = get_harness(config)
    wrapped = harness.run(SEED_BASE, actions=[])
    bare = harness.run(SEED_BASE, actions=[], chaos=False)
    assert wrapped.ok and bare.ok
    assert wrapped.stats == bare.stats
    assert wrapped.fingerprint() == bare.fingerprint()


def main() -> None:  # pragma: no cover - manual entry point
    for config in sorted(HARNESSES):
        actions_total, failures = _sweep_config(config)
        status = "ok" if not failures else f"{len(failures)} FAILURES"
        print(
            f"{config:8s} seeds={SEEDS_PER_CONFIG} actions={actions_total} {status}"
        )
        for failure in failures:
            print(failure["snippet"])


if __name__ == "__main__":  # pragma: no cover
    main()
