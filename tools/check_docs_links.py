#!/usr/bin/env python3
"""Check that internal links in the markdown docs resolve.

Usage::

    python tools/check_docs_links.py README.md docs

Arguments are markdown files or directories (scanned recursively for
``*.md``).  For every inline link or image ``[text](target)``:

* external targets (``http://``, ``https://``, ``mailto:``) are skipped;
* pure in-page anchors (``#section``) are checked against the file's own
  headings;
* relative paths are resolved against the containing file and must exist
  (an optional ``#anchor`` is checked against the target's headings when
  the target is itself markdown).

Anchors are derived from headings the way GitHub does (lowercase,
punctuation stripped, spaces to hyphens).  Exits non-zero listing every
broken link; prints a one-line summary otherwise.  No dependencies.
"""

from __future__ import annotations

import pathlib
import re
import sys

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_anchor(heading: str) -> str:
    heading = re.sub(r"[`*_]", "", heading.strip()).lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return set()
    return {github_anchor(match) for match in HEADING.findall(text)}


def collect_files(arguments) -> list:
    files = []
    for argument in arguments:
        path = pathlib.Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def check_file(path: pathlib.Path) -> list:
    problems = []
    text = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors_of(path):
                problems.append(f"{path}: broken in-page anchor {target!r}")
            continue
        raw, _, anchor = target.partition("#")
        resolved = (path.parent / raw).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken link {target!r} -> {resolved}")
            continue
        if anchor and resolved.suffix == ".md" and anchor not in anchors_of(resolved):
            problems.append(
                f"{path}: link {target!r} -> missing anchor #{anchor} in {resolved.name}"
            )
    return problems


def main(argv) -> int:
    files = collect_files(argv or ["README.md", "docs"])
    missing = [str(f) for f in files if not f.exists()]
    if missing:
        print("no such file(s): " + ", ".join(missing), file=sys.stderr)
        return 2
    problems = []
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(f"{len(problems)} broken link(s) across {len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"ok: {len(files)} markdown file(s), all internal links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
